// Package wire defines SDE1, the versioned wire format for live experiment
// event streams: the typed engine events (engine.RoundEvent, PublishEvent,
// ProbeEvent) plus run-lifecycle frames, serialized onto any io.Writer and
// decoded back from any io.Reader. It is the network-facing sibling of the
// checkpoint codecs (SDC1/SDA1, internal/core) and the DAG codec (SDG1,
// internal/dag): those snapshot state, SDE1 streams the events between
// snapshots, so a remote consumer replaying an SDE1 stream into
// engine.Hooks observes exactly what a local observer would.
//
// # Format
//
// A stream is the 4-byte magic "SDE1" followed by a sequence of gob-encoded
// Frame values produced by one persistent encoder (gob transmits type
// descriptors once per stream, so frames after the first are compact). A
// stream always starts decoding from its header: random access happens at
// the server, which re-encodes a fresh stream from any event index — that,
// not byte-level seeking, is how `GET /runs/{id}/events?from=N` resumes.
//
// # Indexing
//
// Every frame carries Index, its position in the run's append-only event
// log. Indices are assigned once, at emission, and never change: a stream
// served from index N carries the same frames, bit-for-bit, as the suffix
// of a stream served from 0. Checkpoint frames record the log position a
// state snapshot corresponds to, so "resume from the last checkpoint's
// event index" is a plain Index comparison.
//
// # Versioning
//
// The magic byte '1' is the format version. Any change to the Frame schema
// that gob cannot absorb transparently (field renames, type changes,
// semantic changes to Index) must bump the magic to "SDE2" and teach
// NewReader to name the mismatch; additive, gob-compatible field additions
// (new optional fields, new Kind values) may keep the version. Decoders
// reject the checkpoint-family magics (SDC1/SDA1/SDG1) with an error that
// names what the bytes actually are, and vice versa.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/fl"
)

// Magic identifies an SDE1 event stream and fixes the version.
var Magic = [4]byte{'S', 'D', 'E', '1'}

// The sibling formats NewReader recognizes to produce actionable
// confusion errors.
var (
	magicSDC1 = [4]byte{'S', 'D', 'C', '1'}
	magicSDA1 = [4]byte{'S', 'D', 'A', '1'}
	magicSDG1 = [4]byte{'S', 'D', 'G', '1'}
)

// The concrete Detail payloads engines attach to RoundEvents must be
// registered so gob can carry them through the interface field: remote
// observers get the full per-unit result, not just the summary.
func init() {
	gob.Register(&core.RoundResult{})
	gob.Register(&core.AsyncEvent{})
	gob.Register(&fl.RoundResult{})
}

// Kind discriminates the frame types of a stream.
type Kind uint8

const (
	// KindStart opens a run's log: engine identity and config summary.
	KindStart Kind = 1 + iota
	// KindRound carries one engine.RoundEvent (one completed unit).
	KindRound
	// KindPublish carries one engine.PublishEvent.
	KindPublish
	// KindProbe carries one engine.ProbeEvent.
	KindProbe
	// KindCheckpoint records that a state snapshot was taken; its Index is
	// the snapshot's resume point in the event log.
	KindCheckpoint
	// KindGap is inserted by a server when a subscriber fell behind the
	// bounded ring: the frames in [Gap.From, Gap.To) were dropped for this
	// subscriber (drop semantics). The subscriber may instead fetch the
	// latest checkpoint and treat it as a state snapshot covering the gap
	// (snapshot semantics).
	KindGap
	// KindEnd closes a run's log: natural completion, cancellation or
	// failure. No frames follow it.
	KindEnd
)

// String names the kind for logs and dagstat summaries.
func (k Kind) String() string {
	switch k {
	case KindStart:
		return "start"
	case KindRound:
		return "round"
	case KindPublish:
		return "publish"
	case KindProbe:
		return "probe"
	case KindCheckpoint:
		return "checkpoint"
	case KindGap:
		return "gap"
	case KindEnd:
		return "end"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// RunInfo is the payload of a KindStart frame: what produced this log.
type RunInfo struct {
	// Engine is the engine's Name (e.g. "specdag", "specdag-async").
	Engine string
	// Label is a submitter-chosen run name, possibly empty.
	Label string
	// Seed is the run's root seed.
	Seed int64
	// Config is a flat human-readable summary of the run configuration
	// (dataset, preset, selector, horizon, …). Consumers must not parse it
	// back into a config — it exists for inspection (dagstat) only.
	Config map[string]string
}

// Checkpoint is the payload of a KindCheckpoint frame.
type Checkpoint struct {
	// Step is the number of engine units completed at the snapshot.
	Step int
	// Size is the snapshot's size in bytes.
	Size int64
}

// Gap is the payload of a KindGap frame.
type Gap struct {
	// From and To bound the dropped half-open index range [From, To).
	From, To uint64
	// CheckpointIndex is the most recent checkpoint's event index at drop
	// time (0 when no checkpoint exists), the snapshot-semantics recovery
	// point.
	CheckpointIndex uint64
}

// End is the payload of a KindEnd frame.
type End struct {
	// Steps is the number of units the engine completed.
	Steps int
	// Completed is true when the engine reached its natural end.
	Completed bool
	// Err carries the failure or cancellation, empty on natural completion.
	Err string
}

// Frame is one element of an event stream. Exactly the payload field
// matching Kind is non-nil; Reader enforces this so a corrupted stream
// surfaces as an error, never as a nil dereference in the consumer.
type Frame struct {
	// Index is the frame's position in the run's append-only event log.
	Index uint64
	Kind  Kind

	Round      *engine.RoundEvent
	Publish    *engine.PublishEvent
	Probe      *engine.ProbeEvent
	Start      *RunInfo
	Checkpoint *Checkpoint
	Gap        *Gap
	End        *End
}

// validate checks the kind/payload coherence contract.
func (f *Frame) validate() error {
	set := 0
	if f.Round != nil {
		set++
	}
	if f.Publish != nil {
		set++
	}
	if f.Probe != nil {
		set++
	}
	if f.Start != nil {
		set++
	}
	if f.Checkpoint != nil {
		set++
	}
	if f.Gap != nil {
		set++
	}
	if f.End != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("wire: frame %d has %d payloads, want exactly 1", f.Index, set)
	}
	ok := false
	switch f.Kind {
	case KindStart:
		ok = f.Start != nil
	case KindRound:
		ok = f.Round != nil
	case KindPublish:
		ok = f.Publish != nil
	case KindProbe:
		ok = f.Probe != nil
	case KindCheckpoint:
		ok = f.Checkpoint != nil
	case KindGap:
		ok = f.Gap != nil
	case KindEnd:
		ok = f.End != nil
	default:
		return fmt.Errorf("wire: frame %d has unknown kind %d", f.Index, uint8(f.Kind))
	}
	if !ok {
		return fmt.Errorf("wire: frame %d kind %s does not match its payload", f.Index, f.Kind)
	}
	return nil
}

// A Writer encodes frames onto one SDE1 stream.
type Writer struct {
	w   io.Writer
	enc *gob.Encoder
}

// NewWriter writes the stream header and returns a frame encoder.
func NewWriter(w io.Writer) (*Writer, error) {
	if _, err := w.Write(Magic[:]); err != nil {
		return nil, fmt.Errorf("wire: writing stream header: %w", err)
	}
	return &Writer{w: w, enc: gob.NewEncoder(w)}, nil
}

// WriteFrame appends one frame to the stream.
func (w *Writer) WriteFrame(f *Frame) error {
	if err := f.validate(); err != nil {
		return err
	}
	if err := w.enc.Encode(f); err != nil {
		return fmt.Errorf("wire: encoding frame %d: %w", f.Index, err)
	}
	return nil
}

// A Reader decodes frames from one SDE1 stream.
type Reader struct {
	dec  *gob.Decoder
	prev uint64 // last index seen, for monotonicity
	some bool   // a frame has been read
}

// NewReader checks the stream header and returns a frame decoder. The
// sibling formats of the SD family are recognized and named, so handing the
// wrong artifact to the wrong reader produces a directive, not a gob error.
func NewReader(r io.Reader) (*Reader, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("wire: reading stream header: %w", err)
	}
	switch magic {
	case Magic:
	case magicSDC1:
		return nil, fmt.Errorf("wire: this is a synchronous simulation checkpoint (magic %q), not an event stream — resume it with ResumeSimulation or inspect it with dagstat", magic)
	case magicSDA1:
		return nil, fmt.Errorf("wire: this is an asynchronous simulation checkpoint (magic %q), not an event stream — resume it with ResumeAsyncSimulation or inspect it with dagstat", magic)
	case magicSDG1:
		return nil, fmt.Errorf("wire: this is a bare DAG snapshot (magic %q), not an event stream — inspect it with dagstat or dag.ReadDAG", magic)
	default:
		return nil, fmt.Errorf("wire: bad magic %q (not an SDE1 event stream)", magic)
	}
	return &Reader{dec: gob.NewDecoder(r)}, nil
}

// ReadFrame decodes the next frame. It returns io.EOF at a clean stream
// end; any other error means the stream is corrupt or truncated mid-frame.
func (r *Reader) ReadFrame() (*Frame, error) {
	var f Frame
	if err := r.dec.Decode(&f); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: decoding frame: %w", err)
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	if r.some && f.Index <= r.prev {
		return nil, fmt.Errorf("wire: frame index %d not after previous %d (stream corrupt or spliced)", f.Index, r.prev)
	}
	r.prev, r.some = f.Index, true
	return &f, nil
}

// ReadAll drains the stream into a slice — the convenience form dagstat and
// tests use for finite logs. A stream ending without io.EOF mid-frame
// returns the frames read so far alongside the error.
func ReadAll(r io.Reader) ([]Frame, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Frame
	for {
		f, err := rd.ReadFrame()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, *f)
	}
}

// An EventLog writes a run's event stream to a file or connection through
// engine.Hooks: the file-backed counterpart of the serving broadcaster.
// cmd/specdag's -events flag and tests use it; indices are assigned in
// emission order starting at start.
type EventLog struct {
	w    *Writer
	next uint64
	err  error // first write error; subsequent appends are dropped
}

// NewEventLog opens an SDE1 stream on w, emits the KindStart frame and
// returns the log. start is the index the log begins at — 0 for a fresh
// run, the checkpoint's event index for a resumed one.
func NewEventLog(w io.Writer, start uint64, info RunInfo) (*EventLog, error) {
	ww, err := NewWriter(w)
	if err != nil {
		return nil, err
	}
	l := &EventLog{w: ww, next: start}
	l.append(&Frame{Kind: KindStart, Start: &info})
	return l, l.err
}

// append stamps the next index and writes the frame, latching the first
// error (hooks have no error return; Err surfaces it).
func (l *EventLog) append(f *Frame) {
	if l.err != nil {
		return
	}
	f.Index = l.next
	l.next++
	l.err = l.w.WriteFrame(f)
}

// Hooks returns hooks that append every engine event to the log. Pass them
// to engine.Run alongside any other hooks.
func (l *EventLog) Hooks() engine.Hooks {
	return engine.Hooks{
		OnRound:   func(ev engine.RoundEvent) { l.append(&Frame{Kind: KindRound, Round: &ev}) },
		OnPublish: func(ev engine.PublishEvent) { l.append(&Frame{Kind: KindPublish, Publish: &ev}) },
		OnProbe:   func(ev engine.ProbeEvent) { l.append(&Frame{Kind: KindProbe, Probe: &ev}) },
	}
}

// Checkpoint records a state snapshot taken at the log's current position.
func (l *EventLog) Checkpoint(step int, size int64) {
	l.append(&Frame{Kind: KindCheckpoint, Checkpoint: &Checkpoint{Step: step, Size: size}})
}

// End closes the log with the run's outcome. The EventLog must not be
// appended to afterwards.
func (l *EventLog) End(steps int, completed bool, runErr error) {
	e := &End{Steps: steps, Completed: completed}
	if runErr != nil {
		e.Err = runErr.Error()
	}
	l.append(&Frame{Kind: KindEnd, End: e})
}

// NextIndex returns the index the next appended frame will get.
func (l *EventLog) NextIndex() uint64 { return l.next }

// Err returns the first error any append encountered, nil if none.
func (l *EventLog) Err() error { return l.err }

// EncodeFrame serializes one frame as a standalone value (fresh encoder —
// type descriptors included). Tests use it to compare events byte-for-byte;
// streams use Writer, which amortizes descriptors.
func EncodeFrame(f *Frame) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("wire: encoding frame %d: %w", f.Index, err)
	}
	return buf.Bytes(), nil
}
