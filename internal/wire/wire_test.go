package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
)

// sampleFrames builds one frame of every kind, with realistic payloads
// (including a Detail interface payload, the part gob only carries for
// registered types).
func sampleFrames() []Frame {
	rr := &core.RoundResult{
		Round:         3,
		Active:        []int{1, 4, 7},
		TrainedAcc:    []float64{0.5, 0.625, 0.75},
		TrainedLoss:   []float64{1.5, 1.25, 1.0},
		RefAcc:        []float64{0.25, 0.5, 0.625},
		RefLoss:       []float64{2, 1.75, 1.5},
		Published:     []bool{true, false, true},
		WalkDurations: []time.Duration{10, 20, 30},
	}
	asyncEv := &core.AsyncEvent{Seq: 9, Time: 42.5, Client: 4, TrainedAcc: 0.875, Published: true}
	return []Frame{
		{Index: 10, Kind: KindStart, Start: &RunInfo{
			Engine: "specdag", Label: "t", Seed: 7,
			Config: map[string]string{"dataset": "fmnist", "rounds": "30"},
		}},
		{Index: 11, Kind: KindPublish, Publish: &engine.PublishEvent{
			Engine: "specdag", Round: 3, Issuer: 4, Tx: 17, Acc: 0.75, Poisoned: true,
		}},
		{Index: 12, Kind: KindRound, Round: &engine.RoundEvent{
			Engine: "specdag", Round: 3, MeanAcc: 0.625, MeanLoss: 1.25,
			Published: 2, DAGSize: 18, Detail: rr,
		}},
		{Index: 13, Kind: KindRound, Round: &engine.RoundEvent{
			Engine: "specdag-async", Round: 9, Time: 42.5, MeanAcc: 0.875,
			DAGSize: 11, Detail: asyncEv,
		}},
		{Index: 14, Kind: KindProbe, Probe: &engine.ProbeEvent{
			Engine: "specdag", Step: 4, Name: "pureness", Value: 0.5,
		}},
		{Index: 15, Kind: KindCheckpoint, Checkpoint: &Checkpoint{Step: 4, Size: 12345}},
		{Index: 16, Kind: KindGap, Gap: &Gap{From: 3, To: 9, CheckpointIndex: 5}},
		{Index: 17, Kind: KindEnd, End: &End{Steps: 4, Completed: true}},
	}
}

// TestFrameRoundTrip pins that every frame kind survives encode/decode
// field-for-field, including the interface-typed Detail payloads.
func TestFrameRoundTrip(t *testing.T) {
	frames := sampleFrames()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		if err := w.WriteFrame(&frames[i]); err != nil {
			t.Fatalf("writing frame %d: %v", i, err)
		}
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !reflect.DeepEqual(got[i], frames[i]) {
			t.Errorf("frame %d diverged:\n got %+v\nwant %+v", i, got[i], frames[i])
		}
	}
	// The Detail payloads must come back as their concrete types.
	if _, ok := got[2].Round.Detail.(*core.RoundResult); !ok {
		t.Errorf("sync Detail decoded as %T, want *core.RoundResult", got[2].Round.Detail)
	}
	if _, ok := got[3].Round.Detail.(*core.AsyncEvent); !ok {
		t.Errorf("async Detail decoded as %T, want *core.AsyncEvent", got[3].Round.Detail)
	}
}

// TestMagicConfusion pins the actionable errors for the sibling formats and
// garbage headers.
func TestMagicConfusion(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"sync checkpoint", []byte("SDC1rest"), "synchronous simulation checkpoint"},
		{"async checkpoint", []byte("SDA1rest"), "asynchronous simulation checkpoint"},
		{"dag snapshot", []byte("SDG1rest"), "bare DAG snapshot"},
		{"garbage", []byte("NOPE"), "not an SDE1 event stream"},
		{"empty", nil, "reading stream header"},
		{"short", []byte("SD"), "reading stream header"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewReader(bytes.NewReader(c.data))
			if err == nil {
				t.Fatal("NewReader accepted bad header")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestTruncation pins that a stream cut at any byte either yields a clean
// prefix of the frames or an error — never a panic, never an invented frame.
func TestTruncation(t *testing.T) {
	frames := sampleFrames()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := range frames {
		if err := w.WriteFrame(&frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		got, err := ReadAll(bytes.NewReader(full[:cut]))
		if err == nil && len(got) == len(frames) {
			t.Fatalf("truncation at %d of %d decoded the full stream", cut, len(full))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], frames[i]) {
				t.Fatalf("truncation at %d: frame %d is not a clean prefix", cut, i)
			}
		}
	}
}

// TestIndexMonotonicity pins that spliced streams (repeated or reordered
// indices) are rejected.
func TestIndexMonotonicity(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	ev := engine.ProbeEvent{Engine: "e", Name: "p"}
	for _, idx := range []uint64{5, 6, 6} {
		if err := w.WriteFrame(&Frame{Index: idx, Kind: KindProbe, Probe: &ev}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "not after previous") {
		t.Fatalf("repeated index not rejected: %v", err)
	}
}

// TestFrameValidation pins the kind/payload coherence checks on both ends.
func TestFrameValidation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.WriteFrame(&Frame{Kind: KindRound}); err == nil {
		t.Error("frame with no payload accepted")
	}
	if err := w.WriteFrame(&Frame{
		Kind:  KindRound,
		Round: &engine.RoundEvent{}, Probe: &engine.ProbeEvent{},
	}); err == nil {
		t.Error("frame with two payloads accepted")
	}
	if err := w.WriteFrame(&Frame{Kind: KindEnd, Round: &engine.RoundEvent{}}); err == nil {
		t.Error("kind/payload mismatch accepted")
	}
}

// TestEventLog drives the file-backed log through engine.Hooks and pins the
// resulting stream structure: start, events in hook order, checkpoint, end.
func TestEventLog(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewEventLog(&buf, 100, RunInfo{Engine: "specdag", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h := log.Hooks()
	h.OnPublish(engine.PublishEvent{Engine: "specdag", Tx: 1})
	h.OnRound(engine.RoundEvent{Engine: "specdag", Round: 0})
	log.Checkpoint(1, 99)
	h.OnProbe(engine.ProbeEvent{Engine: "specdag", Name: "p"})
	log.End(1, false, errors.New("canceled"))
	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	if log.NextIndex() != 106 {
		t.Errorf("NextIndex = %d, want 106", log.NextIndex())
	}

	frames, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{KindStart, KindPublish, KindRound, KindCheckpoint, KindProbe, KindEnd}
	if len(frames) != len(wantKinds) {
		t.Fatalf("got %d frames, want %d", len(frames), len(wantKinds))
	}
	for i, f := range frames {
		if f.Kind != wantKinds[i] {
			t.Errorf("frame %d kind %s, want %s", i, f.Kind, wantKinds[i])
		}
		if f.Index != uint64(100+i) {
			t.Errorf("frame %d index %d, want %d", i, f.Index, 100+i)
		}
	}
	if end := frames[len(frames)-1].End; end.Completed || end.Err != "canceled" {
		t.Errorf("end frame %+v, want canceled", end)
	}
}

// TestEventLogLatchesError pins that a failing sink surfaces through Err
// instead of panicking inside hooks (which have no error return).
func TestEventLogLatchesError(t *testing.T) {
	sink := &failSwitch{}
	log, err := NewEventLog(sink, 0, RunInfo{Engine: "e"})
	if err != nil {
		t.Fatal(err)
	}
	sink.fail = true
	h := log.Hooks()
	h.OnRound(engine.RoundEvent{Engine: "e"})
	h.OnRound(engine.RoundEvent{Engine: "e"})
	if log.Err() == nil {
		t.Fatal("sink failure not latched")
	}
}

// failSwitch is an io.Writer that fails once told to.
type failSwitch struct{ fail bool }

func (f *failSwitch) Write(p []byte) (int, error) {
	if f.fail {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}
