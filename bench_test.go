// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus ablation benches for the design choices called out
// in DESIGN.md §5.
//
// Each benchmark regenerates its experiment at Quick scale and prints the
// resulting rows/series once, so
//
//	go test -bench=. -benchmem ./... | tee bench_output.txt
//
// both measures the harness and records the reproduced numbers. Paper-scale
// runs of the same experiments: cmd/experiments -full.
//
// The harness runs sweep cells and the round engine on a worker pool sized
// by SPECDAG_WORKERS (default: NumCPU). Results are identical for any
// worker count, so
//
//	SPECDAG_WORKERS=1 go test -bench=. .   # sequential baseline
//	go test -bench=. .                     # parallel engine
//
// is a pure wall-clock comparison; BENCH_parallel.json records one such
// snapshot.
package specdag_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/specdag/specdag/internal/sim"
)

// metricName sanitizes labels for b.ReportMetric, whose units must not
// contain whitespace.
func metricName(parts ...string) string {
	return strings.ReplaceAll(strings.Join(parts, "-"), " ", "-")
}

const benchSeed int64 = 42

// benchPreset is the scale for all experiment benchmarks.
const benchPreset = sim.Quick

// printOnce guards experiment output so repeated benchmark iterations print
// a series only once.
func printOnce(once *sync.Once, render func() string) {
	once.Do(func() { fmt.Println(render()) })
}

var table2Once sync.Once

// BenchmarkTable2ApprovalPureness regenerates Table 2: approval pureness on
// FMNIST-clustered, Poets and CIFAR-100 after training with α=10.
func BenchmarkTable2ApprovalPureness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Table2(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&table2Once, func() string { return sim.RenderTable2(rows) })
			for _, r := range rows {
				b.ReportMetric(r.Pureness, r.Dataset+"-pureness")
			}
		}
	}
}

var fig5Once sync.Once

// BenchmarkFigure5AlphaMetrics regenerates Fig. 5: modularity, partition
// count and misclassification of G_clients for α ∈ {1, 10, 100}.
func BenchmarkFigure5AlphaMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.Figure5(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&fig5Once, func() string { return sim.RenderFig5(res) })
			for _, r := range res {
				b.ReportMetric(r.Series.Last("modularity"), fmt.Sprintf("modularity-alpha%g", r.Alpha))
			}
		}
	}
}

var fig6Once sync.Once

// BenchmarkFigure6AccuracyByAlpha regenerates Fig. 6: accuracy per round on
// FMNIST-clustered for α ∈ {0.1, 1, 10, 100}, standard normalization.
func BenchmarkFigure6AccuracyByAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := sim.Figure6(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&fig6Once, func() string {
				return sim.RenderCurves("Figure 6: accuracy by alpha (standard normalization)", curves)
			})
			for _, c := range curves {
				b.ReportMetric(c.Series.Last("acc"), c.Label+"-final-acc")
			}
		}
	}
}

var fig7Once sync.Once

// BenchmarkFigure7DynamicNormalization regenerates Fig. 7: the accuracy
// sweep with Eq. 3 normalization plus the α=1 pureness comparison.
func BenchmarkFigure7DynamicNormalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.Figure7(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&fig7Once, func() string { return sim.RenderFig7(res) })
			b.ReportMetric(res.PurenessAlpha1["standard"], "pureness-standard")
			b.ReportMetric(res.PurenessAlpha1["dynamic"], "pureness-dynamic")
		}
	}
}

var fig8Once sync.Once

// BenchmarkFigure8RelaxedClusters regenerates Fig. 8: the α sweep on the
// relaxed dataset (15–20 % foreign-cluster data).
func BenchmarkFigure8RelaxedClusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := sim.Figure8(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&fig8Once, func() string {
				return sim.RenderCurves("Figure 8: accuracy by alpha (relaxed clusters)", curves)
			})
			for _, c := range curves {
				b.ReportMetric(c.Series.Last("acc"), c.Label+"-final-acc")
			}
		}
	}
}

var fig9Once sync.Once

// BenchmarkFigure9FedAvgComparison regenerates Fig. 9: per-client accuracy
// distributions, FedAvg vs Specializing DAG, on all three datasets.
func BenchmarkFigure9FedAvgComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.Figure9(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&fig9Once, func() string { return sim.RenderFig9(res) })
			for _, r := range res {
				lastF := r.FedAvg[len(r.FedAvg)-1].Stats
				lastD := r.DAG[len(r.DAG)-1].Stats
				b.ReportMetric(lastF.Median, r.Dataset+"-fedavg-median")
				b.ReportMetric(lastD.Median, r.Dataset+"-dag-median")
			}
		}
	}
}

var fig1011Once sync.Once

func runFig1011(b *testing.B, metric string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		curves, err := sim.Figure10And11(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&fig1011Once, func() string { return sim.RenderFig1011(curves) })
			for _, c := range curves {
				b.ReportMetric(c.Series.Last(metric), c.Algorithm+"-final-"+metric)
			}
		}
	}
}

// BenchmarkFigure10FedProxAccuracy regenerates Fig. 10: mean accuracy per
// round for FedAvg, FedProx and DAG on Synthetic(0.5, 0.5).
func BenchmarkFigure10FedProxAccuracy(b *testing.B) { runFig1011(b, "acc") }

// BenchmarkFigure11FedProxLoss regenerates Fig. 11: mean loss per round for
// the same three algorithms (shares runs with Fig. 10).
func BenchmarkFigure11FedProxLoss(b *testing.B) { runFig1011(b, "loss") }

var fig1213Once sync.Once

func runFig1213(b *testing.B, metric string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		curves, err := sim.Figure12And13(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&fig1213Once, func() string { return sim.RenderPoison(curves) })
			for _, c := range curves {
				b.ReportMetric(c.Series.Last(metric), metricName(c.Label, metric))
			}
		}
	}
}

// BenchmarkFigure12PoisoningFlipped regenerates Fig. 12: flipped 3↔8
// predictions under the label-flip attack for p ∈ {0, 0.2, 0.3} and the
// random-selector baseline.
func BenchmarkFigure12PoisoningFlipped(b *testing.B) { runFig1213(b, "flippedPct") }

// BenchmarkFigure13PoisonedApprovals regenerates Fig. 13: poisoned
// transactions approved by consensus references (shares runs with Fig. 12).
func BenchmarkFigure13PoisonedApprovals(b *testing.B) { runFig1213(b, "poisonedApprovals") }

var fig14Once sync.Once

// BenchmarkFigure14PoisonClusterHistogram regenerates Fig. 14: the
// distribution of poisoned clients over Louvain-inferred communities.
func BenchmarkFigure14PoisonClusterHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.Figure14(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&fig14Once, func() string { return sim.RenderFig14(res) })
			b.ReportMetric(float64(res.Communities), "communities")
			b.ReportMetric(res.Containment, "containment")
		}
	}
}

var fig15Once sync.Once

// BenchmarkFigure15WalkScalability regenerates Fig. 15: random-walk cost
// (wall clock and model evaluations) for growing numbers of concurrently
// active clients.
func BenchmarkFigure15WalkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := sim.Figure15(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&fig15Once, func() string { return sim.RenderFig15(curves) })
			for _, c := range curves {
				evals := c.Series.Col("evalsPerClient")
				b.ReportMetric(evals[len(evals)-1], fmt.Sprintf("evals-active%d", c.ActiveClients))
			}
		}
	}
}

// ---- Ablation benches (DESIGN.md §5) ----

func runAblation(b *testing.B, once *sync.Once, title string,
	run func(context.Context, sim.Preset, int64) ([]sim.AblationRow, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := run(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(once, func() string { return sim.RenderAblation(title, rows) })
			for _, r := range rows {
				b.ReportMetric(r.FinalAcc, metricName(r.Variant, "acc"))
			}
		}
	}
}

var (
	ablNormOnce     sync.Once
	ablGateOnce     sync.Once
	ablDepthOnce    sync.Once
	ablRefOnce      sync.Once
	ablSelectorOnce sync.Once
)

// BenchmarkAblationNormalization compares Eq. 1 vs Eq. 3 at α=1.
func BenchmarkAblationNormalization(b *testing.B) {
	runAblation(b, &ablNormOnce, "normalization (alpha=1)", sim.AblationNormalization)
}

// BenchmarkAblationPublishGate compares publish-if-better vs always-publish.
func BenchmarkAblationPublishGate(b *testing.B) {
	runAblation(b, &ablGateOnce, "publish gate", sim.AblationPublishGate)
}

// BenchmarkAblationWalkDepth compares genesis-start vs depth-15–25 walks.
func BenchmarkAblationWalkDepth(b *testing.B) {
	runAblation(b, &ablDepthOnce, "walk entry depth", sim.AblationWalkDepth)
}

// BenchmarkAblationReferenceWalks compares 1 vs 3 consensus-reference walks.
func BenchmarkAblationReferenceWalks(b *testing.B) {
	runAblation(b, &ablRefOnce, "reference walks", sim.AblationReferenceWalks)
}

// BenchmarkAblationSelectors compares accuracy walk vs cumulative-weight
// walk vs URTS.
func BenchmarkAblationSelectors(b *testing.B) {
	runAblation(b, &ablSelectorOnce, "selector family", sim.AblationSelectors)
}

var ablShareOnce sync.Once

// BenchmarkAblationPartialSharing exercises the paper's future-work
// extension: sharing only the first layer while keeping personal heads.
func BenchmarkAblationPartialSharing(b *testing.B) {
	runAblation(b, &ablShareOnce, "partial layer sharing", sim.AblationPartialSharing)
}

var visibilityOnce sync.Once

// BenchmarkExtensionVisibility sweeps the transaction reveal delay,
// relaxing the ideal-broadcast assumption of §5.3.5.
func BenchmarkExtensionVisibility(b *testing.B) {
	runAblation(b, &visibilityOnce, "reveal delay (non-ideal broadcast)", sim.VisibilitySweep)
}

// BenchmarkSchedulerGridThroughput measures the sweep scheduler itself: 32
// tiny DAG cells with mixed priorities submitted as work-stealing jobs on
// the shared pool, small enough that dispatch, steal and settle overhead —
// not training time — dominates. The reported accuracies are gated
// byte-for-byte across worker counts (cmd/benchgate): scheduling decides
// only when a cell's units run, never its results.
func BenchmarkSchedulerGridThroughput(b *testing.B) {
	const cells = 32
	for i := 0; i < b.N; i++ {
		accs, err := sim.ThroughputGrid(context.Background(), benchPreset, benchSeed, cells)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var mean float64
			for _, a := range accs {
				mean += a
			}
			mean /= float64(len(accs))
			b.ReportMetric(mean, "sched-grid-mean-acc")
			b.ReportMetric(accs[0], "sched-grid-first-acc")
			b.ReportMetric(accs[len(accs)-1], "sched-grid-last-acc")
		}
	}
}

var faultsOnce sync.Once

// BenchmarkFaultScenarios runs the canned fault-injection scenarios
// (split-and-heal partition, 3× stragglers, 25% churn over a lossy jittered
// network) on the async engine. The reported accuracies are gated
// byte-for-byte across worker counts (cmd/benchgate): per-event fault draws
// are keyed on stable identifiers, so the schedule — and everything trained
// under it — is a pure function of the configuration and seed.
func BenchmarkFaultScenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.FaultSweep(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&faultsOnce, func() string { return sim.RenderFaults(rows) })
			for _, r := range rows {
				b.ReportMetric(r.FirstAcc, metricName("fault", r.Scenario, "first-acc"))
				b.ReportMetric(r.LastAcc, metricName("fault", r.Scenario, "last-acc"))
				b.ReportMetric(r.MeanAcc, metricName("fault", r.Scenario, "mean-acc"))
			}
		}
	}
}

var gossipOnce sync.Once

// BenchmarkGossipComparison compares the DAG against the gossip-learning
// baseline (related work §3.2) and FedAvg on the clustered dataset.
func BenchmarkGossipComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := sim.GossipComparison(context.Background(), benchPreset, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(&gossipOnce, func() string { return sim.RenderFig1011(curves) })
			for _, c := range curves {
				b.ReportMetric(c.Series.Last("acc"), c.Algorithm+"-final-acc")
			}
		}
	}
}
