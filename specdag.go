// Package specdag is the public API of the Specializing DAG library — a
// reproduction of "Implicit Model Specialization through DAG-based
// Decentralized Federated Learning" (Beilharz, Pfitzner, Schmid et al.,
// Middleware '21).
//
// The library provides:
//
//   - a tangle-style DAG of model updates with accuracy-aware tip selection
//     (the paper's contribution, [NewSimulation]);
//   - the event-driven, round-free variant a real deployment would run
//     ([NewAsyncSimulation]);
//   - the centralized FedAvg/FedProx baselines ([NewFederated]) and the
//     gossip-learning baseline ([NewGossip]);
//   - one unified run API behind all of them ([Run]): every engine is
//     cancelable via context, observable mid-flight through typed progress
//     events ([Hooks], [WithProbe]), and — for both DAG simulations —
//     checkpointable and resumable bit-identically ([WithCheckpoints],
//     [ResumeSimulation], [ResumeAsyncSimulation]);
//   - a shared worker budget ([WorkerPool]) so nested fan-outs (sweeps of
//     engines, each fanning over clients) never oversubscribe the machine;
//   - synthetic federated datasets with cluster-structured non-IID data
//     ([FMNISTClustered], [Poets], [CIFAR100PAM], [FedProxSynthetic]);
//   - the specialization metrics of the paper's evaluation
//     ([ApprovalPureness], [BuildClientGraph], [Louvain], [Modularity],
//     [Misclassification]).
//
// # Quickstart
//
//	fed := specdag.FMNISTClustered(specdag.FMNISTConfig{Clients: 30, Seed: 1})
//	sim, err := specdag.NewSimulation(fed, specdag.Config{
//		Rounds:          50,
//		ClientsPerRound: 10,
//		Local:           specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
//		Arch:            specdag.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
//		Selector:        specdag.AccuracyWalk{Alpha: 10},
//	})
//	if err != nil { ... }
//
//	// Drive the engine under a context: cancelable at round granularity,
//	// observable through typed events, probe-able mid-run.
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	_, err = specdag.Run(ctx, sim,
//		specdag.WithHooks(specdag.Hooks{
//			OnRound: func(ev specdag.RoundEvent) {
//				fmt.Printf("round %d: acc %.3f, DAG %d\n", ev.Round, ev.MeanAcc, ev.DAGSize)
//			},
//		}),
//		specdag.WithProbe("pureness", 10, func() float64 {
//			return specdag.ApprovalPureness(sim.DAG(), fed.ClusterOf())
//		}),
//	)
//	results := sim.Results() // complete, or partial after cancellation
//
// Long runs checkpoint and resume bit-identically:
//
//	var buf bytes.Buffer
//	sim.WriteCheckpoint(&buf)                            // after a canceled run
//	sim2, _ := specdag.ResumeSimulation(fed, cfg, &buf)  // same fed + cfg
//	specdag.Run(ctx, sim2)                               // history/DAG identical
//	                                                     // to an uninterrupted run
//
// The event-driven engine checkpoints the same way, at event granularity —
// a crash between any two client activations is recoverable with zero
// drift (the event queue, in-flight transactions and per-client statistics
// all ride in the snapshot):
//
//	async, _ := specdag.NewAsyncSimulation(fed, acfg)
//	specdag.Run(ctx, async, specdag.WithCheckpoints(25, openCheckpointFile))
//	// …process dies; later, with the same fed + acfg:
//	resumed, _ := specdag.ResumeAsyncSimulation(fed, acfg, checkpointFile)
//	specdag.Run(ctx, resumed)  // event stream, stats and DAG identical
//
// The same [Run] call drives every other engine ([NewAsyncSimulation],
// [NewFederated], [NewGossip]). The previous fire-and-forget entry points
// (Simulation.Run, [RunAsync], [RunFederated]) remain as thin deprecated
// wrappers around the engines.
//
// # Serving
//
// [NewServer] hosts many concurrent runs on one shared worker budget and
// serves their lifecycle and live event streams over HTTP; cmd/specdagd
// wraps it in a standalone daemon. Runs are submitted as a [RunRequest]
// (POST /runs), paused to a checkpoint, resumed bit-identically, canceled,
// and streamed (GET /runs/{id}/events?from=N). [Subscribe] is the client
// side: it replays a remote stream into ordinary [Hooks], reconnecting and
// resuming from the last delivered index, so a remote observer sees exactly
// the events a local one would — field for field:
//
//	srv := specdag.NewServer(specdag.ServeConfig{})
//	go http.ListenAndServe("127.0.0.1:9477", srv.Handler())
//	// …any number of processes, anywhere:
//	end, err := specdag.Subscribe(ctx, "http://127.0.0.1:9477", 1,
//		specdag.SubscribeOptions{Hooks: specdag.Hooks{
//			OnRound: func(ev specdag.RoundEvent) { fmt.Println(ev.Round, ev.MeanAcc) },
//		}})
//
// Streams travel in SDE1, a versioned frame codec ([EventFrame]): a Start
// frame identifying the run, one frame per engine event, then lifecycle
// frames (Checkpoint, Gap, End). The format is append-only and
// gob-compatible additions keep the SDE1 magic; a breaking change bumps it.
// cmd/specdag -events records a local run in the same format, and
// cmd/dagstat inspects saved streams.
//
// A slow subscriber never stalls an engine. Each run's events fan out
// through a bounded ring ([Broadcaster]): appends are O(1) and never block,
// and a subscriber that falls more than a ring behind is told exactly which
// index range it missed. It then chooses drop semantics (continue from the
// oldest retained frame) or snapshot semantics (fetch the run's checkpoint
// and resume the stream from the checkpoint's index). examples/liveview
// demonstrates both.
//
// See examples/ for complete programs and cmd/experiments for the harness
// that regenerates every table and figure of the paper.
package specdag

import (
	"io"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/dataset"
	"github.com/specdag/specdag/internal/faults"
	"github.com/specdag/specdag/internal/fl"
	"github.com/specdag/specdag/internal/graphx"
	"github.com/specdag/specdag/internal/metrics"
	"github.com/specdag/specdag/internal/nn"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/xrand"
)

// ---- Specializing DAG simulation (internal/core) ----

// Config parameterizes a Specializing DAG simulation. See core.Config.
type Config = core.Config

// PoisonConfig describes the flipped-label attack scenario of §4.4.
type PoisonConfig = core.PoisonConfig

// Simulation is a running Specializing DAG experiment.
type Simulation = core.Simulation

// RoundResult records the evaluation of one simulated round.
type RoundResult = core.RoundResult

// NewSimulation validates inputs and prepares a Specializing DAG simulation.
func NewSimulation(fed *Federation, cfg Config) (*Simulation, error) {
	return core.NewSimulation(fed, cfg)
}

// AsyncConfig parameterizes the event-driven (round-free) simulation with
// heterogeneous client speeds and network delay (§5.3.3: "no stragglers").
type AsyncConfig = core.AsyncConfig

// AsyncResult is the outcome of an event-driven run.
type AsyncResult = core.AsyncResult

// AsyncClientStats summarizes one client's activity in an async run.
type AsyncClientStats = core.AsyncClientStats

// RunAsync executes the event-driven Specializing DAG simulation to
// completion.
//
// Deprecated: RunAsync cannot be canceled or observed mid-flight. Construct
// the engine with [NewAsyncSimulation], drive it with [Run], and read
// Result afterwards.
func RunAsync(fed *Federation, cfg AsyncConfig) (*AsyncResult, error) {
	//speclint:allow deprecated this deprecated public wrapper delegates to its deprecated internal counterpart to keep numerics pinned
	return core.RunAsync(fed, cfg)
}

// ---- Fault injection (internal/faults) ----

// FaultConfig is a deterministic network/client fault schedule for the
// simulation engines: per-link latency and jitter, broadcast drops recovered
// by re-gossip, duplicate deliveries, scheduled split-and-heal partitions,
// stragglers (cycle-time multipliers) and crash/recover churn. Set
// Config.Faults or AsyncConfig.Faults (with NetworkDelay 0) to enable it;
// the zero value disables fault injection. Every draw is keyed on stable
// identifiers via seed splits, so a faulty run remains bit-identical across
// worker counts and checkpoint/resume boundaries.
type FaultConfig = faults.Config

// FaultPartition is one scheduled network partition in a FaultConfig: the
// federation splits into Groups disjoint groups during [From, To) and heals.
type FaultPartition = faults.Partition

// ScalarFaults returns the fault schedule exactly equivalent to a uniform
// broadcast delay — the engines produce bit-identical results either way.
func ScalarFaults(delay float64) FaultConfig { return faults.Scalar(delay) }

// ---- Tangle (internal/dag) ----

// DAG is the thread-safe tangle of model-update transactions.
type DAG = dag.DAG

// Transaction is one published model update in the DAG.
type Transaction = dag.Transaction

// TxID identifies a transaction within a DAG.
type TxID = dag.ID

// TxMeta is the experiment bookkeeping attached to a transaction.
type TxMeta = dag.Meta

// NewDAG creates a tangle containing a genesis transaction with the given
// initial model parameters.
func NewDAG(genesisParams []float64) *DAG { return dag.New(genesisParams) }

// ReadDAG deserializes a binary DAG snapshot previously written with
// (*DAG).WriteTo, re-validating all structural invariants.
func ReadDAG(r io.Reader) (*DAG, error) { return dag.ReadDAG(r) }

// Compaction is the opt-in epoch-compaction policy for bounded-memory long
// runs: transactions are bucketed into fixed-width epochs by round, and
// epochs older than the live window are frozen — their cumulative weights
// summarized and their parameter vectors released (optionally spilled to
// disk first). Set Config.Compaction or AsyncConfig.Compaction to enable it;
// the zero value keeps the classic keep-everything behavior. With a
// depth-banded selector the produced history, final DAG and gated metrics
// are byte-identical to an uncompacted run.
type Compaction = dag.Compaction

// EpochSummary is the retained summary of one frozen epoch: its ID range,
// per-epoch statistics, the confirmed cumulative weights, and the spill file
// (if any) holding the released parameter vectors.
type EpochSummary = dag.EpochSummary

// ---- Tip selection (internal/tipselect) ----

// Selector chooses tips of the DAG for approval.
type Selector = tipselect.Selector

// Evaluator scores a transaction's model on a walker's local data.
type Evaluator = tipselect.Evaluator

// AccuracyWalk is the paper's accuracy-biased random walk (Algorithm 1).
type AccuracyWalk = tipselect.AccuracyWalk

// WeightedWalk is the classic cumulative-weight tangle walk (Fig. 3).
type WeightedWalk = tipselect.WeightedWalk

// URTS is uniform random tip selection.
type URTS = tipselect.URTS

// UniformWalk is an unbiased random walk over the DAG.
type UniformWalk = tipselect.UniformWalk

// Normalization selects the accuracy normalization of the walk weights.
type Normalization = tipselect.Normalization

// Normalization modes: Eq. 1 (standard) and Eq. 3 (dynamic).
const (
	NormStandard = tipselect.NormStandard
	NormDynamic  = tipselect.NormDynamic
)

// WalkWeights converts child accuracies into selection weights (Eqs. 1-3).
func WalkWeights(accs []float64, alpha float64, norm Normalization) []float64 {
	return tipselect.Weights(accs, alpha, norm)
}

// ---- Models (internal/nn) ----

// Arch describes a feed-forward architecture.
type Arch = nn.Arch

// SGDConfig controls local mini-batch SGD training.
type SGDConfig = nn.SGDConfig

// MLP is a feed-forward network with ReLU hidden layers and softmax output.
type MLP = nn.MLP

// NewModel constructs a model with Glorot-initialized weights from seed.
func NewModel(arch Arch, seed int64) *MLP { return nn.New(arch, xrand.New(seed)) }

// AverageParams returns the element-wise mean of parameter vectors — the
// model-averaging step of both FedAvg and the DAG.
func AverageParams(vecs ...[]float64) []float64 { return nn.AverageParams(vecs...) }

// ---- Datasets (internal/dataset) ----

// Federation is a complete federated dataset.
type Federation = dataset.Federation

// FedClient is one federated participant with private train/test splits.
type FedClient = dataset.Client

// Dataset is an ordered collection of samples.
type Dataset = dataset.Dataset

// Sample is a single labeled example.
type Sample = dataset.Sample

// FMNISTConfig parameterizes the synthetic FMNIST-clustered dataset.
type FMNISTConfig = dataset.FMNISTConfig

// PoetsConfig parameterizes the two-language next-character dataset.
type PoetsConfig = dataset.PoetsConfig

// CIFARConfig parameterizes the synthetic CIFAR-100/PAM dataset.
type CIFARConfig = dataset.CIFARConfig

// FedProxConfig parameterizes the FedProx Synthetic(alpha, beta) dataset.
type FedProxConfig = dataset.FedProxConfig

// FMNISTClustered generates the synthetic FMNIST-clustered federation
// (paper §5.1.1).
func FMNISTClustered(cfg FMNISTConfig) *Federation { return dataset.FMNISTClustered(cfg) }

// Poets generates the two-language next-character federation (§5.1.2).
func Poets(cfg PoetsConfig) *Federation { return dataset.Poets(cfg) }

// CIFAR100PAM generates the synthetic CIFAR-100 federation with
// Pachinko-style allocation (§5.1.3).
func CIFAR100PAM(cfg CIFARConfig) *Federation { return dataset.CIFAR100PAM(cfg) }

// FedProxSynthetic generates the Synthetic(alpha, beta) federation
// (§5.3.3).
func FedProxSynthetic(cfg FedProxConfig) *Federation { return dataset.FedProxSynthetic(cfg) }

// ---- Centralized baselines (internal/fl) ----

// FedConfig parameterizes a FedAvg/FedProx run.
type FedConfig = fl.Config

// FedResult is a full FedAvg/FedProx run.
type FedResult = fl.Result

// RunFederated executes FedAvg (or FedProx when cfg.ProxMu > 0) to
// completion.
//
// Deprecated: RunFederated cannot be canceled or observed mid-flight.
// Construct the engine with [NewFederated], drive it with [Run], and read
// Result afterwards.
func RunFederated(fed *Federation, cfg FedConfig) (*FedResult, error) {
	//speclint:allow deprecated this deprecated public wrapper delegates to its deprecated internal counterpart to keep numerics pinned
	return fl.Run(fed, cfg)
}

// ---- Metrics (internal/metrics, internal/graphx) ----

// Graph is an undirected weighted graph over client IDs.
type Graph = graphx.Graph

// BoxStats summarizes an accuracy sample for box plots.
type BoxStats = metrics.BoxStats

// BuildClientGraph derives the G_clients graph from a DAG (§4.3).
func BuildClientGraph(d *DAG) *Graph { return metrics.BuildClientGraph(d) }

// ApprovalPureness is the fraction of same-cluster approvals (Table 2).
func ApprovalPureness(d *DAG, clusterOf map[int]int) float64 {
	return metrics.ApprovalPureness(d, clusterOf)
}

// Misclassification is the fraction of clients whose inferred community
// majority disagrees with their true cluster (§4.3).
func Misclassification(partition, truth map[int]int) float64 {
	return metrics.Misclassification(partition, truth)
}

// Modularity computes Newman's modularity of a partition.
func Modularity(g *Graph, partition map[int]int) float64 { return graphx.Modularity(g, partition) }

// Louvain detects communities by modularity maximization. Pass seed < 0 for
// a deterministic visiting order.
func Louvain(g *Graph, seed int64) map[int]int {
	if seed < 0 {
		return graphx.Louvain(g, nil)
	}
	return graphx.Louvain(g, xrand.New(seed))
}

// NumCommunities returns the number of distinct communities in a partition.
func NumCommunities(partition map[int]int) int { return graphx.NumCommunities(partition) }

// NewBoxStats computes distribution statistics for box plots (Fig. 9).
func NewBoxStats(values []float64) BoxStats { return metrics.NewBoxStats(values) }

// PoisonedApprovals counts poisoned transactions among a transaction's
// ancestors (Fig. 13).
func PoisonedApprovals(d *DAG, id TxID) int { return metrics.PoisonedApprovals(d, id) }
