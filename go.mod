module github.com/specdag/specdag

go 1.24
