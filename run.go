package specdag

// The unified streaming run API: one cancelable, observable, resumable
// engine loop behind every experiment. See the package documentation in
// specdag.go for the quickstart.

import (
	"context"
	"io"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/fl"
	"github.com/specdag/specdag/internal/par"
)

// Engine is a resumable experiment stepper: one unit of work (a round or a
// client activation) per Step. Implementations in this library:
//
//   - *Simulation (NewSimulation): the synchronous Specializing DAG
//   - *AsyncSimulation (NewAsyncSimulation): the event-driven DAG
//   - *Federated (NewFederated): FedAvg / FedProx
//   - *Gossip (NewGossip): gossip learning
//
// Any type with the same Step/Name methods plugs into Run, so downstream
// code can drive custom engines with the same machinery.
type Engine = engine.Engine

// StepResult is what an Engine reports for one completed unit of work.
type StepResult = engine.StepResult

// RoundEvent reports one completed round (or, for the asynchronous engine,
// one client activation).
type RoundEvent = engine.RoundEvent

// PublishEvent reports one model update entering the DAG.
type PublishEvent = engine.PublishEvent

// ProbeEvent reports one mid-run metric probe (see WithProbe).
type ProbeEvent = engine.ProbeEvent

// Hooks receives typed progress events during Run; nil fields are skipped.
// Hooks run synchronously on Run's goroutine in strict unit order,
// regardless of the engine's internal worker count.
type Hooks = engine.Hooks

// Observer is the interface form of Hooks, for stateful observers.
type Observer = engine.Observer

// Snapshotter is implemented by engines whose full state can be
// checkpointed mid-run and resumed bit-identically (*Simulation and
// *AsyncSimulation).
type Snapshotter = engine.Snapshotter

// RunOption configures Run.
type RunOption = engine.Option

// RunReport summarizes a Run: the engine's name, the number of completed
// units, and whether the engine reached its natural end (false after a
// cancellation or error).
type RunReport = engine.Report

// WorkerPool is a shared worker budget: a fixed number of concurrency slots
// that nested fan-outs (an experiment sweep running several engines, each
// fanning over its round's clients) draw from, so the whole tree never runs
// more goroutines than the pool's size. Hand one pool to related runs via
// WithPool or the Pool field of Config/AsyncConfig/FedConfig.
type WorkerPool = par.Budget

// NewWorkerPool creates a shared worker budget with the given number of
// slots (size <= 0 selects the number of CPUs).
func NewWorkerPool(size int) *WorkerPool { return par.NewBudget(size) }

// Run drives an engine to completion under ctx — the single entry point
// behind every experiment in this library. Cancellation (ctx.Done, a
// deadline) takes effect at round/event granularity: Run returns ctx.Err()
// and the engine retains the partial results of the units completed so far
// (read them from the engine, e.g. sim.Results() or fedEngine.Result()).
//
//	sim, err := specdag.NewSimulation(fed, cfg)
//	...
//	rep, err := specdag.Run(ctx, sim, specdag.WithHooks(specdag.Hooks{
//		OnRound: func(ev specdag.RoundEvent) { fmt.Println(ev.Round, ev.MeanAcc) },
//	}))
func Run(ctx context.Context, e Engine, opts ...RunOption) (*RunReport, error) {
	return engine.Run(ctx, e, opts...)
}

// WithHooks registers progress hooks. Multiple WithHooks/WithObserver
// options compose; each event is delivered to all of them in option order.
func WithHooks(h Hooks) RunOption { return engine.WithHooks(h) }

// WithObserver registers an Observer (the interface form of WithHooks).
func WithObserver(o Observer) RunOption { return engine.WithObserver(o) }

// WithPool hands the engine a shared worker budget for its internal
// fan-out (see WorkerPool).
func WithPool(p *WorkerPool) RunOption { return engine.WithPool(p) }

// WithProbe evaluates fn after every `every` completed units and delivers
// the value as a ProbeEvent — mid-run metric probes without stopping the
// run, e.g. watching specialization emerge:
//
//	specdag.WithProbe("pureness", 10, func() float64 {
//		return specdag.ApprovalPureness(sim.DAG(), fed.ClusterOf())
//	})
func WithProbe(name string, every int, fn func() float64) RunOption {
	return engine.WithProbe(name, every, fn)
}

// WithCheckpoints writes a full-state checkpoint every `every` completed
// units; open receives the step count and returns the destination, which
// Run closes after writing. The engine must implement Snapshotter.
func WithCheckpoints(every int, open func(step int) (io.WriteCloser, error)) RunOption {
	return engine.WithCheckpoints(every, open)
}

// ---- Multi-run scheduling ----

// Scheduler multiplexes many engine runs onto one shared WorkerPool:
// work-stealing workers drive each submitted Job's run loop a quantum of
// units at a time, ordered by priority with aging (no starvation), with
// pause/resume/cancel per job at unit boundaries. Results are bit-identical
// to driving each engine directly with Run, for every worker count and
// priority order.
type Scheduler = engine.Scheduler

// SchedulerConfig parameterizes NewScheduler.
type SchedulerConfig = engine.SchedulerConfig

// Job is one unit of scheduled work: an engine (or a lazy builder for one)
// plus scheduling policy — priority, an optional compute-time deadline, run
// options, and a settle callback.
type Job = engine.Job

// JobHandle controls one submitted job: state, steps, report, Wait, Pause,
// Resume, Cancel.
type JobHandle = engine.Handle

// JobState is a job's lifecycle state (JobQueued through JobFailed).
type JobState = engine.JobState

// Job lifecycle states.
const (
	JobQueued   = engine.JobQueued
	JobRunning  = engine.JobRunning
	JobPaused   = engine.JobPaused
	JobDone     = engine.JobDone
	JobCanceled = engine.JobCanceled
	JobFailed   = engine.JobFailed
)

// SchedulerStats counts scheduler activity (dispatches, steals, settles).
type SchedulerStats = engine.Stats

// DeadlineError reports a job canceled because its compute-time deadline
// expired; errors.Is(err, ErrJobDeadline) matches it.
type DeadlineError = engine.DeadlineError

// Scheduler sentinel errors.
var (
	ErrJobCanceled   = engine.ErrJobCanceled
	ErrJobSettled    = engine.ErrJobSettled
	ErrJobDeadline   = engine.ErrJobDeadline
	ErrSchedulerBusy = engine.ErrSchedulerBusy
)

// NewScheduler creates a scheduler drawing from cfg.Pool (nil selects a
// fresh NumCPU-sized pool).
func NewScheduler(cfg SchedulerConfig) *Scheduler { return engine.NewScheduler(cfg) }

// ---- Engine constructors beyond NewSimulation (specdag.go) ----

// AsyncSimulation is the event-driven Specializing DAG engine.
type AsyncSimulation = core.AsyncSimulation

// AsyncEvent describes one processed client activation — the Detail payload
// of the asynchronous engine's RoundEvents.
type AsyncEvent = core.AsyncEvent

// NewAsyncSimulation prepares the event-driven simulation as an Engine for
// Run. Cancellation applies per client activation; Result reports partial
// statistics after a canceled run.
func NewAsyncSimulation(fed *Federation, cfg AsyncConfig) (*AsyncSimulation, error) {
	return core.NewAsyncSimulation(fed, cfg)
}

// Federated is the FedAvg/FedProx engine.
type Federated = fl.Federated

// NewFederated prepares a FedAvg run (or FedProx when cfg.ProxMu > 0) as an
// Engine for Run.
func NewFederated(fed *Federation, cfg FedConfig) (*Federated, error) {
	return fl.NewFederated(fed, cfg)
}

// GossipConfig parameterizes the gossip-learning baseline.
type GossipConfig = fl.GossipConfig

// Gossip is the gossip-learning engine.
type Gossip = fl.Gossip

// NewGossip prepares a gossip-learning run as an Engine for Run.
func NewGossip(fed *Federation, cfg GossipConfig) (*Gossip, error) {
	return fl.NewGossip(fed, cfg)
}

// ResumeSimulation reconstructs a Specializing DAG simulation from a
// checkpoint written by (*Simulation).WriteCheckpoint (directly or via
// WithCheckpoints), using the same federation and configuration as the
// original run. The resumed run's history and DAG are bit-identical to an
// uninterrupted run's.
func ResumeSimulation(fed *Federation, cfg Config, r io.Reader) (*Simulation, error) {
	return core.ResumeSimulation(fed, cfg, r)
}

// ResumeAsyncSimulation reconstructs an event-driven simulation from a
// checkpoint written by (*AsyncSimulation).WriteCheckpoint (directly or via
// WithCheckpoints), using the same federation and configuration as the
// original run. The resumed run's event stream, final statistics and DAG
// are bit-identical to an uninterrupted run's. Unlike ResumeSimulation, the
// simulated-time horizon (AsyncConfig.Duration) cannot be extended on
// resume; all timing parameters must match the checkpoint exactly.
func ResumeAsyncSimulation(fed *Federation, cfg AsyncConfig, r io.Reader) (*AsyncSimulation, error) {
	return core.ResumeAsyncSimulation(fed, cfg, r)
}

// InspectCheckpoint summarizes a checkpoint of either kind — synchronous
// (SDC1) or asynchronous (SDA1) — and returns the embedded tangle without
// reconstructing the simulation.
func InspectCheckpoint(r io.Reader) (*CheckpointInfo, *DAG, error) {
	return core.InspectCheckpoint(r)
}

// CheckpointInfo summarizes a simulation checkpoint.
type CheckpointInfo = core.CheckpointInfo

// compile-time guarantees that every engine satisfies the run API.
var (
	_ Engine      = (*Simulation)(nil)
	_ Snapshotter = (*Simulation)(nil)
	_ Engine      = (*AsyncSimulation)(nil)
	_ Snapshotter = (*AsyncSimulation)(nil)
	_ Engine      = (*Federated)(nil)
	_ Engine      = (*Gossip)(nil)
)
