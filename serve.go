package specdag

// The serving surface: a network daemon API for hosting runs and streaming
// their live event logs to many subscribers (internal/serve), plus the SDE1
// event-stream codec those logs travel in (internal/wire). See the
// "Serving" section of the package documentation in specdag.go.

import (
	"context"
	"io"

	"github.com/specdag/specdag/internal/serve"
	"github.com/specdag/specdag/internal/wire"
)

// ServeConfig parameterizes a Server: the shared worker budget all hosted
// runs draw from, the per-run event ring capacity, the default checkpoint
// cadence, and the directory Shutdown persists paused runs into.
type ServeConfig = serve.Config

// Server hosts many concurrent experiment runs on one shared worker budget
// and serves their lifecycle and live event streams over HTTP:
//
//	POST /runs                   submit a RunRequest, returns RunStatus
//	GET  /runs                   list all runs
//	GET  /runs/{id}              one run's RunStatus
//	POST /runs/{id}/pause        stop at the next unit boundary + checkpoint
//	POST /runs/{id}/resume       continue from the checkpoint, bit-identically
//	POST /runs/{id}/cancel       stop for good
//	GET  /runs/{id}/checkpoint   latest checkpoint blob (SDC1/SDA1)
//	GET  /runs/{id}/events?from=N   SDE1 event stream from index N
//
// cmd/specdagd wraps a Server in a standalone daemon; examples/liveview
// runs one in-process.
type Server = serve.Server

// NewServer creates a serving Server (mount its Handler on any
// http.Server, stop it with Shutdown).
func NewServer(cfg ServeConfig) *Server { return serve.NewServer(cfg) }

// RunRequest is the JSON body of POST /runs — the network form of the
// cmd/specdag flag set.
type RunRequest = serve.RunRequest

// RunStatus is the JSON shape of the server's status endpoints.
type RunStatus = serve.RunStatus

// SubscribeOptions configures Subscribe.
type SubscribeOptions = serve.SubscribeOptions

// Subscribe follows a hosted run's event stream and replays it into Hooks,
// reconnecting and resuming from the last delivered index when the
// connection drops — a remote observer sees exactly what a local
// engine.Hooks observer would, field for field.
func Subscribe(ctx context.Context, baseURL string, id int, opt SubscribeOptions) (*EventEnd, error) {
	return serve.Subscribe(ctx, baseURL, id, opt)
}

// Backoff is the capped exponential backoff with deterministic jitter that
// Subscribe sleeps between reconnect attempts (SubscribeOptions.Backoff);
// the zero value selects the documented defaults.
type Backoff = serve.Backoff

// Broadcaster fans one run's event stream out to any number of subscribers
// through a bounded ring: the appending side never blocks on a slow
// subscriber (drop-or-snapshot semantics; see the internal/serve package
// documentation).
type Broadcaster = serve.Broadcaster

// NewBroadcaster creates a standalone broadcaster (capacity <= 0 selects
// the default ring size) whose event log starts at the given index.
func NewBroadcaster(capacity int, start uint64) *Broadcaster {
	return serve.NewBroadcaster(capacity, start)
}

// GapError reports that a subscriber fell behind its broadcaster's ring and
// names exactly which index range it missed.
type GapError = serve.GapError

// ---- SDE1 event-stream codec (internal/wire) ----

// EventFrame is one frame of an SDE1 event stream: an index, a kind, and
// exactly one payload (a run event or a lifecycle record).
type EventFrame = wire.Frame

// EventKind discriminates an EventFrame's payload.
type EventKind = wire.Kind

// Event-frame kinds.
const (
	EventKindStart      = wire.KindStart
	EventKindRound      = wire.KindRound
	EventKindPublish    = wire.KindPublish
	EventKindProbe      = wire.KindProbe
	EventKindCheckpoint = wire.KindCheckpoint
	EventKindGap        = wire.KindGap
	EventKindEnd        = wire.KindEnd
)

// EventRunInfo identifies the run at the head of an event stream.
type EventRunInfo = wire.RunInfo

// EventEnd is the final frame's payload: how the run ended.
type EventEnd = wire.End

// EventLog writes an SDE1 event-log file from engine hooks (cmd/specdag
// -events uses one to record a run while it executes).
type EventLog = wire.EventLog

// NewEventLog starts an SDE1 event log on w, beginning at the given index
// with a start frame identifying the run.
func NewEventLog(w io.Writer, start uint64, info EventRunInfo) (*EventLog, error) {
	return wire.NewEventLog(w, start, info)
}

// ReadEventLog decodes a complete SDE1 stream (e.g. a file written by
// EventLog or a saved events download).
func ReadEventLog(r io.Reader) ([]EventFrame, error) { return wire.ReadAll(r) }
