// Fedcompare: compare the Specializing DAG against the centralized FedAvg
// and FedProx baselines on the FedProx synthetic dataset (paper §5.3.3,
// Figs. 10 & 11).
//
// Synthetic(0.5, 0.5) gives every client a different local optimum, which
// punishes a single global model. The DAG accommodates the heterogeneity
// without any central server.
//
// All three algorithms are engines behind the same specdag.Run call — the
// unified run API is what makes this comparison a loop over engines rather
// than three bespoke code paths.
//
//	go run ./examples/fedcompare
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	specdag "github.com/specdag/specdag"
)

const clientsPerRound = 10

func rounds() int {
	if os.Getenv("SPECDAG_EXAMPLES_FAST") != "" {
		return 10 // CI smoke mode: same program, fewer rounds
	}
	return 30
}

func main() {
	fed := specdag.FedProxSynthetic(specdag.FedProxConfig{
		Clients:    30,
		MaxSamples: 300,
		Seed:       21,
	})
	arch := specdag.Arch{In: fed.InputDim, Out: fed.NumClasses} // softmax regression, as in FedProx
	local := specdag.SGDConfig{LR: 0.05, Epochs: 2, BatchSize: 10}

	fedAvg := runCentralized(fed, arch, local, 0)
	fedProx := runCentralized(fed, arch, local, 1.0)
	dagAcc, dagLoss := runDAG(fed, arch, local)

	fmt.Println("round | FedAvg acc/loss | FedProx acc/loss | DAG acc/loss")
	fmt.Println("------|-----------------|------------------|-------------")
	for r := 0; r < rounds(); r += 5 {
		fmt.Printf("%5d | %.3f / %.3f   | %.3f / %.3f    | %.3f / %.3f\n",
			r+1,
			fedAvg.MeanAccs()[r], fedAvg.MeanLosses()[r],
			fedProx.MeanAccs()[r], fedProx.MeanLosses()[r],
			dagAcc[r], dagLoss[r])
	}

	tailMean := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs[len(xs)-5:] {
			s += v
		}
		return s / 5
	}
	fmt.Printf("\nfinal (last-5-round mean) accuracy:  FedAvg %.3f | FedProx %.3f | DAG %.3f\n",
		tailMean(fedAvg.MeanAccs()), tailMean(fedProx.MeanAccs()), tailMean(dagAcc))
	fmt.Printf("final (last-5-round mean) loss:      FedAvg %.3f | FedProx %.3f | DAG %.3f\n",
		tailMean(fedAvg.MeanLosses()), tailMean(fedProx.MeanLosses()), tailMean(dagLoss))
	fmt.Println("\nPer the paper: the DAG's specialized local models eventually beat the")
	fmt.Println("FedAvg global model and approach FedProx — with no central server.")
}

func runCentralized(fed *specdag.Federation, arch specdag.Arch, local specdag.SGDConfig, proxMu float64) *specdag.FedResult {
	eng, err := specdag.NewFederated(fed, specdag.FedConfig{
		Rounds:          rounds(),
		ClientsPerRound: clientsPerRound,
		Local:           local,
		ProxMu:          proxMu,
		Arch:            arch,
		Seed:            22,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := specdag.Run(context.Background(), eng); err != nil {
		log.Fatal(err)
	}
	return eng.Result()
}

func runDAG(fed *specdag.Federation, arch specdag.Arch, local specdag.SGDConfig) (accs, losses []float64) {
	sim, err := specdag.NewSimulation(fed, specdag.Config{
		Rounds:          rounds(),
		ClientsPerRound: clientsPerRound,
		Local:           local,
		Arch:            arch,
		Selector:        specdag.AccuracyWalk{Alpha: 10},
		Seed:            23,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The per-round curve streams out of the run as round events.
	_, err = specdag.Run(context.Background(), sim, specdag.WithHooks(specdag.Hooks{
		OnRound: func(ev specdag.RoundEvent) {
			accs = append(accs, ev.MeanAcc)
			losses = append(losses, ev.MeanLoss)
		},
	}))
	if err != nil {
		log.Fatal(err)
	}
	return accs, losses
}
