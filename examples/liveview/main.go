// Liveview: boot the specdagd serving stack in-process, submit an
// asynchronous DAG-FL run over its HTTP API, and watch the experiment live
// from two subscribers with very different appetites.
//
// The demo shows the serving subsystem's core guarantee: a slow consumer
// never stalls the engine. The "live" subscriber follows the run as it
// happens and sees every event. The "late" subscriber connects after the
// run's bounded event ring has already wrapped, so the server cannot replay
// the whole history — instead of blocking the engine (or buffering without
// bound) it tells the subscriber exactly which frames were dropped and where
// the latest checkpoint is, and continues from the oldest retained frame.
// The subscriber picks its own recovery: accept the gap (drop semantics) or
// fetch /runs/{id}/checkpoint and rebuild state (snapshot semantics).
//
//	go run ./examples/liveview
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	specdag "github.com/specdag/specdag"
)

func main() {
	duration := 120.0 // simulated seconds
	if os.Getenv("SPECDAG_EXAMPLES_FAST") != "" {
		duration = 20 // CI smoke mode: same program, shorter horizon
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// --- Boot the daemon in-process: the same serving stack cmd/specdagd
	// wraps, mounted on an ephemeral localhost port. Ring is deliberately
	// tiny so the demo can show what happens when a subscriber falls more
	// than a ring behind.
	srv := specdag.NewServer(specdag.ServeConfig{Ring: 64, CheckpointEvery: 10})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	//speclint:allow budget HTTP listener, not engine fan-out: the daemon's transport goroutine lives outside the worker budget, exactly as in cmd/specdagd
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon: serving on %s (ring = 64 frames)\n", base)

	// --- Submit an asynchronous run over the HTTP API, exactly as a remote
	// client (or curl) would.
	body, _ := json.Marshal(specdag.RunRequest{
		Dataset:  "fmnist",
		Seed:     42,
		Async:    true,
		Duration: duration,
		Label:    "liveview",
	})
	resp, err := http.Post(base+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var st specdag.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("daemon: accepted run %d (%s engine, %.0fs horizon)\n\n", st.ID, st.Engine, duration)

	// --- Subscriber 1, "live": follows from the first frame and replays the
	// stream into ordinary engine hooks — the same types, order and field
	// values a local observer attached via specdag.WithHooks would see.
	type tally struct {
		rounds, publishes int
		lastAcc           float64
		end               *specdag.EventEnd
	}
	liveDone := make(chan tally, 1)
	//speclint:allow budget a remote subscriber is transport, not engine fan-out: it blocks on the network, never draws from the worker budget
	go func() {
		var tl tally
		end, err := specdag.Subscribe(ctx, base, st.ID, specdag.SubscribeOptions{
			Hooks: specdag.Hooks{
				OnRound: func(ev specdag.RoundEvent) {
					tl.rounds++
					tl.lastAcc = ev.MeanAcc
					if tl.rounds%50 == 0 {
						fmt.Printf("live   : t≈%5.1fs  %4d activations  mean acc %.3f\n",
							ev.Time, tl.rounds, ev.MeanAcc)
					}
				},
				OnPublish: func(specdag.PublishEvent) { tl.publishes++ },
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		tl.end = end
		liveDone <- tl
	}()

	// --- Wait for the engine to finish. The live subscriber is streaming
	// the whole time; the engine never waits for it (appends to the event
	// ring are O(1) and non-blocking).
	for {
		r, err := http.Get(fmt.Sprintf("%s/runs/%d", base, st.ID))
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			log.Fatal(err)
		}
		r.Body.Close()
		if st.State != "running" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	live := <-liveDone
	fmt.Printf("\nlive   : run %s after %d activations, %d publishes, final mean acc %.3f\n",
		st.State, live.rounds, live.publishes, live.lastAcc)

	// --- Subscriber 2, "late": asks for the stream from index 0 after the
	// 64-frame ring has long since wrapped. The server does not block or
	// buffer for it — it reports the dropped range and carries on from the
	// oldest retained frame.
	var lateTl tally
	var gap *specdag.EventFrame
	lateEnd, err := specdag.Subscribe(ctx, base, st.ID, specdag.SubscribeOptions{
		From: 0,
		OnFrame: func(f specdag.EventFrame) {
			if f.Kind == specdag.EventKindGap {
				g := f
				gap = &g
			}
		},
		Hooks: specdag.Hooks{
			OnRound: func(ev specdag.RoundEvent) {
				lateTl.rounds++
				lateTl.lastAcc = ev.MeanAcc
			},
			OnPublish: func(specdag.PublishEvent) { lateTl.publishes++ },
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	lateTl.end = lateEnd
	if gap != nil {
		fmt.Printf("late   : server dropped frames [%d, %d) — too slow for a %d-frame ring\n",
			gap.Gap.From, gap.Gap.To, 64)
		fmt.Printf("late   : saw only %d of %d activations (drop semantics), same final acc %.3f\n",
			lateTl.rounds, live.rounds, lateTl.lastAcc)

		// Snapshot semantics, the other recovery: instead of accepting the
		// gap, fetch the run's checkpoint and rebuild state from it.
		cr, err := http.Get(fmt.Sprintf("%s/runs/%d/checkpoint", base, st.ID))
		if err != nil {
			log.Fatal(err)
		}
		ckpt, _ := io.ReadAll(cr.Body)
		cr.Body.Close()
		fmt.Printf("late   : (or snapshot semantics: %d-byte checkpoint at index %s, resume the stream from there)\n",
			len(ckpt), cr.Header.Get("X-Specdag-Checkpoint-Index"))
	} else {
		fmt.Printf("late   : the run was short enough to fit the ring — no frames dropped\n")
	}

	if live.end.Steps == lateTl.end.Steps && live.lastAcc == lateTl.lastAcc {
		fmt.Printf("\nboth subscribers agree: %d engine steps, final mean acc %.3f\n",
			live.end.Steps, live.lastAcc)
		fmt.Println("— and neither ever slowed the engine down: slow consumers drop, they don't stall.")
	} else {
		fmt.Printf("\nsubscribers diverged: %+v vs %+v\n", live.end, lateTl.end)
		os.Exit(1)
	}

	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
