// Asyncdag: run the Specializing DAG without rounds, as a real deployment
// would (paper §5.3.3): every client trains continuously at its own speed,
// and published models propagate with a network delay.
//
// The demo shows the "no stragglers" property: a client that is 8x slower
// than another simply contributes fewer updates — it never blocks anyone,
// unlike a synchronized FedAvg round that waits for the slowest participant.
//
// The engine runs through the unified run API at event granularity: the
// deadline on the context caps wall-clock time, and Result() reports
// whatever the run achieved — exactly how a long-lived deployment would be
// supervised.
//
//	go run ./examples/asyncdag
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	specdag "github.com/specdag/specdag"
)

func main() {
	duration := 120.0 // simulated seconds
	if os.Getenv("SPECDAG_EXAMPLES_FAST") != "" {
		duration = 20 // CI smoke mode: same program, shorter horizon
	}

	fed := specdag.FMNISTClustered(specdag.FMNISTConfig{
		Clients:        20,
		TrainPerClient: 60,
		TestPerClient:  15,
		Seed:           31,
	})

	cfg := specdag.AsyncConfig{
		Duration:     duration,
		MinCycle:     1, // fastest client: one cycle per second
		MaxCycle:     8, // slowest: one cycle per 8 seconds
		NetworkDelay: 0.5,
		Local:        specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:         specdag.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Selector:     specdag.AccuracyWalk{Alpha: 10},
		Seed:         32,
	}
	async, err := specdag.NewAsyncSimulation(fed, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A real deployment supervises the runner: bound its wall-clock time
	// and observe publishes as they happen.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	publishes := 0
	_, err = specdag.Run(ctx, async, specdag.WithHooks(specdag.Hooks{
		OnPublish: func(specdag.PublishEvent) { publishes++ },
	}))
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
	res := async.Result() // partial if the deadline hit first

	clients := append([]specdag.AsyncClientStats(nil), res.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i].CycleTime < clients[j].CycleTime })

	fmt.Printf("simulated %.0fs: %d activations, %d publish events, %d transactions in the DAG\n\n",
		res.SimulatedTime, async.Events(), publishes, res.Transactions)
	fmt.Println("client | cycle time | cycles done | published | final acc")
	fmt.Println("-------|------------|-------------|-----------|----------")
	for _, c := range clients {
		fmt.Printf("%6d | %9.2fs | %11d | %9d | %.3f\n",
			c.ID, c.CycleTime, c.Cycles, c.Published, c.FinalAcc)
	}

	fastest, slowest := clients[0], clients[len(clients)-1]
	fmt.Printf("\nfastest client completed %dx the work of the slowest (%d vs %d cycles)\n",
		fastest.Cycles/max(1, slowest.Cycles), fastest.Cycles, slowest.Cycles)
	fmt.Println("— and neither ever waited for the other: there is no synchronized round.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
