// Asyncdag: run the Specializing DAG without rounds, as a real deployment
// would (paper §5.3.3): every client trains continuously at its own speed,
// and published models propagate with a network delay.
//
// The demo shows two deployment properties at once. First, "no stragglers":
// a client that is 8x slower than another simply contributes fewer updates —
// it never blocks anyone, unlike a synchronized FedAvg round that waits for
// the slowest participant. Second, crash recovery: the supervisor
// checkpoints the engine's full state every few events, the process
// "crashes" mid-run (a canceled context), and a fresh engine resumes from
// the last checkpoint — finishing with results bit-identical to a run that
// was never interrupted.
//
//	go run ./examples/asyncdag
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	specdag "github.com/specdag/specdag"
)

func main() {
	duration := 120.0 // simulated seconds
	if os.Getenv("SPECDAG_EXAMPLES_FAST") != "" {
		duration = 20 // CI smoke mode: same program, shorter horizon
	}

	fed := specdag.FMNISTClustered(specdag.FMNISTConfig{
		Clients:        20,
		TrainPerClient: 60,
		TestPerClient:  15,
		Seed:           31,
	})

	cfg := specdag.AsyncConfig{
		Duration:     duration,
		MinCycle:     1, // fastest client: one cycle per second
		MaxCycle:     8, // slowest: one cycle per 8 seconds
		NetworkDelay: 0.5,
		Local:        specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:         specdag.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Selector:     specdag.AccuracyWalk{Alpha: 10},
		Seed:         32,
	}
	async, err := specdag.NewAsyncSimulation(fed, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// --- Act 1: supervise the runner, checkpointing every few events,
	// until it "crashes" halfway through the simulated horizon.
	ckptPath := filepath.Join(os.TempDir(), "asyncdag-example.sda")
	defer os.Remove(ckptPath)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	crashCtx, crash := context.WithCancel(ctx)
	defer crash()
	_, err = specdag.Run(crashCtx, async,
		specdag.WithCheckpoints(5, func(int) (io.WriteCloser, error) {
			return os.Create(ckptPath)
		}),
		specdag.WithHooks(specdag.Hooks{
			OnRound: func(ev specdag.RoundEvent) {
				if ev.Time > duration/2 {
					crash() // simulate the process dying mid-run
				}
			},
		}))
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Fatal(err)
	}
	fmt.Printf("supervisor: process crashed after %d events (t≈%.0fs of %.0fs) — last checkpoint on disk\n",
		async.Events(), duration/2, duration)

	// --- Act 2: a fresh engine resumes from the checkpoint and finishes.
	// The resumed run is bit-identical to one that never crashed.
	f, err := os.Open(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := specdag.ResumeAsyncSimulation(fed, cfg, f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supervisor: restarted from event %d (%d transactions in the DAG)\n\n",
		resumed.Events(), resumed.DAG().Size())
	if _, err := specdag.Run(ctx, resumed); err != nil {
		log.Fatal(err)
	}
	res := resumed.Result()

	clients := append([]specdag.AsyncClientStats(nil), res.Clients...)
	sort.Slice(clients, func(i, j int) bool { return clients[i].CycleTime < clients[j].CycleTime })

	publishes := 0
	for _, c := range res.Clients {
		publishes += c.Published
	}
	fmt.Printf("simulated %.0fs: %d activations, %d publish events, %d transactions in the DAG\n\n",
		res.SimulatedTime, resumed.Events(), publishes, res.Transactions)
	fmt.Println("client | cycle time | cycles done | published | final acc")
	fmt.Println("-------|------------|-------------|-----------|----------")
	for _, c := range clients {
		fmt.Printf("%6d | %9.2fs | %11d | %9d | %.3f\n",
			c.ID, c.CycleTime, c.Cycles, c.Published, c.FinalAcc)
	}

	fastest, slowest := clients[0], clients[len(clients)-1]
	fmt.Printf("\nfastest client completed %dx the work of the slowest (%d vs %d cycles)\n",
		fastest.Cycles/max(1, slowest.Cycles), fastest.Cycles, slowest.Cycles)
	fmt.Println("— and neither ever waited for the other: there is no synchronized round.")
	fmt.Println("— and the mid-run crash cost nothing: the checkpoint resumed bit-identically.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
