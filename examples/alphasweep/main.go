// Alphasweep: explore the specialization-generalization trade-off of the
// accuracy-aware random walk by sweeping the α parameter (paper §5.3.1).
//
// High α makes the walk nearly deterministic (strong specialization: many
// small, pure communities); low α approaches a uniform walk (one generalized
// model, low modularity).
//
// The four runs share one worker pool: each simulation's round fan-out
// draws from the same budget, so the sweep saturates the machine without
// oversubscribing it — the same mechanism cmd/experiments uses at scale.
//
//	go run ./examples/alphasweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	specdag "github.com/specdag/specdag"
)

func main() {
	rounds := 30
	if os.Getenv("SPECDAG_EXAMPLES_FAST") != "" {
		rounds = 8 // CI smoke mode: same program, fewer rounds
	}
	pool := specdag.NewWorkerPool(0) // one budget for the whole sweep

	fmt.Println("alpha | pureness | modularity | communities | misclassification | final acc")
	fmt.Println("------|----------|------------|-------------|-------------------|----------")

	for _, alpha := range []float64{0.1, 1, 10, 100} {
		pureness, modularity, comms, mis, acc := runOnce(alpha, rounds, pool)
		fmt.Printf("%5g | %8.3f | %10.3f | %11d | %17.3f | %.3f\n",
			alpha, pureness, modularity, comms, mis, acc)
	}
	fmt.Println("\nThe paper's conclusion (Fig. 5): a medium alpha (10) balances pure")
	fmt.Println("approvals and a community count matching the true clusters; alpha=1")
	fmt.Println("under-specializes and alpha=100 over-fragments the network.")
}

func runOnce(alpha float64, rounds int, pool *specdag.WorkerPool) (pureness, modularity float64, communities int, misclassification, finalAcc float64) {
	fed := specdag.FMNISTClustered(specdag.FMNISTConfig{
		Clients:        30,
		TrainPerClient: 60,
		TestPerClient:  15,
		NoiseStd:       2.5,
		Seed:           7,
	})
	sim, err := specdag.NewSimulation(fed, specdag.Config{
		Rounds:          rounds,
		ClientsPerRound: 10,
		Local:           specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            specdag.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Selector:        specdag.AccuracyWalk{Alpha: alpha},
		Seed:            8,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := specdag.Run(context.Background(), sim, specdag.WithPool(pool)); err != nil {
		log.Fatal(err)
	}
	results := sim.Results()

	g := specdag.BuildClientGraph(sim.DAG())
	part := specdag.Louvain(g, 9)
	last := results[len(results)-1]
	return specdag.ApprovalPureness(sim.DAG(), fed.ClusterOf()),
		specdag.Modularity(g, part),
		specdag.NumCommunities(part),
		specdag.Misclassification(part, fed.ClusterOf()),
		last.MeanTrainedAcc()
}
