// Poisoning: demonstrate the robustness of accuracy-aware tip selection
// against flipped-label attacks (paper §4.4, §5.3.4).
//
// A fraction of clients has labels 3 and 8 swapped in their private data
// (train *and* test — they are unaware of the forgery). The accuracy walk
// isolates poisoned model updates inside the attackers' own region of the
// DAG; the random tip selector spreads them over everyone.
//
//	go run ./examples/poisoning
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	specdag "github.com/specdag/specdag"
)

const (
	cleanRounds = 10
	poisonFrac  = 0.3
)

func attackRounds() int {
	if os.Getenv("SPECDAG_EXAMPLES_FAST") != "" {
		return 12 // CI smoke mode: same program, fewer rounds
	}
	return 40
}

func main() {
	fmt.Printf("flipped-label attack: %d%% of clients, labels 3<->8, starting at round %d\n\n",
		int(poisonFrac*100), cleanRounds)

	fmt.Println("selector                  | benign flipped% | all flipped% | poisoned approvals in consensus")
	fmt.Println("--------------------------|-----------------|--------------|--------------------------------")
	for _, scenario := range []struct {
		name     string
		selector specdag.Selector
	}{
		{"accuracy walk (alpha=10)", specdag.AccuracyWalk{Alpha: 10}},
		{"random tip selector     ", specdag.URTS{}},
	} {
		benign, all, approvals := attack(scenario.selector)
		fmt.Printf("%s  | %14.1f%% | %11.1f%% | %.1f\n",
			scenario.name, benign*100, all*100, approvals)
	}

	fmt.Println("\nBenign clients stay cleaner under the accuracy walk: their walks route")
	fmt.Println("around poisoned model updates, whose accuracy looks poor on honest test")
	fmt.Println("data. Poisoned clients keep selecting each other, which contains the")
	fmt.Println("attack but also makes it hard for them to detect (paper §5.3.4).")
}

// attack runs one poisoning scenario and reports benign-only and overall
// flipped-prediction fractions (mean over the last ten rounds) plus the mean
// number of poisoned transactions approved by consensus references.
func attack(selector specdag.Selector) (benign, all, poisonedApprovals float64) {
	// The poisoning experiments use the by-writer split: every client holds
	// all classes, so a 3<->8 flip is meaningful for everyone. NoiseStd 2.5
	// keeps the task hard enough that one round of local training cannot
	// fully undo a poisoned average.
	fed := specdag.FMNISTClustered(specdag.FMNISTConfig{
		Clients:        30,
		TrainPerClient: 60,
		TestPerClient:  20,
		ByWriter:       true,
		NoiseStd:       2.5,
		Seed:           11,
	})
	sim, err := specdag.NewSimulation(fed, specdag.Config{
		Rounds:          cleanRounds + attackRounds(),
		ClientsPerRound: 10,
		Local:           specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            specdag.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Selector:        selector,
		Poison: specdag.PoisonConfig{
			Fraction:   poisonFrac,
			FlipA:      3,
			FlipB:      8,
			StartRound: cleanRounds,
			Track:      true,
		},
		Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := specdag.Run(context.Background(), sim); err != nil {
		log.Fatal(err)
	}
	results := sim.Results()

	tail := results[len(results)-10:]
	for _, rr := range tail {
		benign += rr.MeanFlippedFracBenign()
		all += rr.MeanFlippedFrac()
		poisonedApprovals += rr.MeanRefPoisonedApprovals()
	}
	n := float64(len(tail))
	return benign / n, all / n, poisonedApprovals / n
}
