// Quickstart: run a small Specializing DAG on a 3-cluster federated dataset
// and watch implicit specialization emerge — live, through the unified run
// API: the run streams typed round events and a mid-run pureness probe, and
// would stop cleanly if the context were canceled.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	specdag "github.com/specdag/specdag"
)

func main() {
	rounds := 30
	if os.Getenv("SPECDAG_EXAMPLES_FAST") != "" {
		rounds = 8 // CI smoke mode: same program, fewer rounds
	}

	// A synthetic 10-class task with 30 clients grouped into three
	// clusters: clients in a cluster share class-conditional distributions,
	// so model updates from the same cluster help and others hurt.
	fed := specdag.FMNISTClustered(specdag.FMNISTConfig{
		Clients:        30,
		TrainPerClient: 60,
		TestPerClient:  15,
		Seed:           1,
	})
	fmt.Printf("federation: %d clients in %d clusters, %d classes\n",
		len(fed.Clients), fed.NumClusters, fed.NumClasses)

	sim, err := specdag.NewSimulation(fed, specdag.Config{
		Rounds:          rounds,
		ClientsPerRound: 10,
		Local:           specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            specdag.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Selector:        specdag.AccuracyWalk{Alpha: 10}, // the paper's sweet spot
		Seed:            2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One Run call drives the whole experiment: progress arrives as typed
	// events, and the probe watches specialization emerge on the live DAG.
	_, err = specdag.Run(context.Background(), sim,
		specdag.WithHooks(specdag.Hooks{
			OnRound: func(ev specdag.RoundEvent) {
				if (ev.Round+1)%5 == 0 {
					fmt.Printf("round %2d: mean accuracy %.3f, DAG size %d\n",
						ev.Round+1, ev.MeanAcc, ev.DAGSize)
				}
			},
			OnProbe: func(ev specdag.ProbeEvent) {
				fmt.Printf("          … %s after %d rounds: %.3f\n", ev.Name, ev.Step, ev.Value)
			},
		}),
		specdag.WithProbe("approval pureness", 10, func() float64 {
			return specdag.ApprovalPureness(sim.DAG(), fed.ClusterOf())
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Specialization is implicit: clients never see cluster labels, yet
	// their approvals stay within their cluster.
	pureness := specdag.ApprovalPureness(sim.DAG(), fed.ClusterOf())
	fmt.Printf("\napproval pureness: %.3f (random baseline %.3f)\n", pureness, fed.BasePureness())

	g := specdag.BuildClientGraph(sim.DAG())
	part := specdag.Louvain(g, 3)
	fmt.Printf("inferred communities: %d (true clusters: %d), modularity %.3f, misclassification %.3f\n",
		specdag.NumCommunities(part), fed.NumClusters,
		specdag.Modularity(g, part),
		specdag.Misclassification(part, fed.ClusterOf()))
}
