// Quickstart: run a small Specializing DAG on a 3-cluster federated dataset
// and watch implicit specialization emerge.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	specdag "github.com/specdag/specdag"
)

func main() {
	// A synthetic 10-class task with 30 clients grouped into three
	// clusters: clients in a cluster share class-conditional distributions,
	// so model updates from the same cluster help and others hurt.
	fed := specdag.FMNISTClustered(specdag.FMNISTConfig{
		Clients:        30,
		TrainPerClient: 60,
		TestPerClient:  15,
		Seed:           1,
	})
	fmt.Printf("federation: %d clients in %d clusters, %d classes\n",
		len(fed.Clients), fed.NumClusters, fed.NumClasses)

	sim, err := specdag.NewSimulation(fed, specdag.Config{
		Rounds:          30,
		ClientsPerRound: 10,
		Local:           specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            specdag.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Selector:        specdag.AccuracyWalk{Alpha: 10}, // the paper's sweet spot
		Seed:            2,
	})
	if err != nil {
		log.Fatal(err)
	}

	for round := 0; round < 30; round++ {
		rr := sim.RunRound()
		if (round+1)%5 == 0 {
			fmt.Printf("round %2d: mean accuracy %.3f, DAG size %d\n",
				round+1, rr.MeanTrainedAcc(), sim.DAG().Size())
		}
	}

	// Specialization is implicit: clients never see cluster labels, yet
	// their approvals stay within their cluster.
	pureness := specdag.ApprovalPureness(sim.DAG(), fed.ClusterOf())
	fmt.Printf("\napproval pureness: %.3f (random baseline %.3f)\n", pureness, fed.BasePureness())

	g := specdag.BuildClientGraph(sim.DAG())
	part := specdag.Louvain(g, 3)
	fmt.Printf("inferred communities: %d (true clusters: %d), modularity %.3f, misclassification %.3f\n",
		specdag.NumCommunities(part), fed.NumClusters,
		specdag.Modularity(g, part),
		specdag.Misclassification(part, fed.ClusterOf()))
}
