package specdag_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"sync"
	"testing"

	specdag "github.com/specdag/specdag"
)

// TestPublicAPIEndToEnd exercises the library exactly as a downstream user
// would: build a federation, run the DAG, compare with FedAvg, compute the
// specialization metrics.
func TestPublicAPIEndToEnd(t *testing.T) {
	fed := specdag.FMNISTClustered(specdag.FMNISTConfig{
		Clients:        12,
		TrainPerClient: 60,
		TestPerClient:  15,
		Seed:           1,
	})

	cfg := specdag.Config{
		Rounds:          15,
		ClientsPerRound: 4,
		Local:           specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            specdag.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Selector:        specdag.AccuracyWalk{Alpha: 10},
		Seed:            2,
	}
	sim, err := specdag.NewSimulation(fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	if len(results) != 15 {
		t.Fatalf("rounds = %d", len(results))
	}

	pureness := specdag.ApprovalPureness(sim.DAG(), fed.ClusterOf())
	if pureness < 0 || pureness > 1 {
		t.Fatalf("pureness out of range: %v", pureness)
	}

	g := specdag.BuildClientGraph(sim.DAG())
	part := specdag.Louvain(g, 3)
	if len(part) == 0 {
		t.Fatal("empty partition")
	}
	if q := specdag.Modularity(g, part); q < -0.5 || q > 1 {
		t.Fatalf("modularity out of range: %v", q)
	}
	mis := specdag.Misclassification(part, fed.ClusterOf())
	if mis < 0 || mis > 1 {
		t.Fatalf("misclassification out of range: %v", mis)
	}

	flRes, err := specdag.RunFederated(fed, specdag.FedConfig{
		Rounds:          10,
		ClientsPerRound: 4,
		Local:           specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            cfg.Arch,
		Seed:            4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(flRes.MeanAccs()) != 10 {
		t.Fatal("FedAvg curve wrong length")
	}
}

func TestPublicDAGAndWeights(t *testing.T) {
	model := specdag.NewModel(specdag.Arch{In: 4, Out: 2}, 1)
	d := specdag.NewDAG(model.ParamsCopy())
	if d.Size() != 1 {
		t.Fatal("genesis missing")
	}
	w := specdag.WalkWeights([]float64{0.9, 0.5}, 10, specdag.NormStandard)
	if w[0] != 1 {
		t.Fatal("best-child weight must be 1")
	}
	avg := specdag.AverageParams([]float64{0, 2}, []float64{2, 0})
	if avg[0] != 1 || avg[1] != 1 {
		t.Fatal("AverageParams broken")
	}
	if n := specdag.NumCommunities(map[int]int{1: 0, 2: 1}); n != 2 {
		t.Fatal("NumCommunities broken")
	}
	if s := specdag.NewBoxStats([]float64{1, 2, 3}); s.Median != 2 {
		t.Fatal("NewBoxStats broken")
	}
}

func TestPublicDatasets(t *testing.T) {
	feds := []*specdag.Federation{
		specdag.Poets(specdag.PoetsConfig{ClientsPerLanguage: 2, CharsPerClient: 150, Seed: 1}),
		specdag.CIFAR100PAM(specdag.CIFARConfig{Clients: 4, TrainPerClient: 30, TestPerClient: 10, Seed: 2}),
		specdag.FedProxSynthetic(specdag.FedProxConfig{Clients: 4, MaxSamples: 120, Seed: 3}),
	}
	for _, fed := range feds {
		if err := fed.Validate(); err != nil {
			t.Errorf("%s: %v", fed.Name, err)
		}
	}
}

// TestRunCancelCheckpointResumeByteIdentical is the acceptance test of the
// unified run API, exercised end to end through the public surface: a run
// started via specdag.Run, canceled partway via its context, checkpointed,
// and resumed must produce byte-identical RoundResult history and DAG
// contents to a run that was never interrupted.
func TestRunCancelCheckpointResumeByteIdentical(t *testing.T) {
	mkFed := func() *specdag.Federation {
		return specdag.FMNISTClustered(specdag.FMNISTConfig{
			Clients:        12,
			TrainPerClient: 60,
			TestPerClient:  15,
			Seed:           61,
		})
	}
	cfg := specdag.Config{
		Rounds:          10,
		ClientsPerRound: 5,
		Local:           specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            specdag.Arch{In: 64, Hidden: []int{32}, Out: 10},
		Selector:        specdag.AccuracyWalk{Alpha: 10},
		Workers:         4,
		Seed:            62,
	}

	// Uninterrupted reference run.
	ref, err := specdag.NewSimulation(mkFed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := specdag.Run(context.Background(), ref); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel from the observer after round 4, checkpoint
	// the partial state, resume it into a fresh simulation, finish.
	interrupted, err := specdag.NewSimulation(mkFed(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := specdag.Run(ctx, interrupted, specdag.WithHooks(specdag.Hooks{
		OnRound: func(ev specdag.RoundEvent) {
			if ev.Round == 3 {
				cancel()
			}
		},
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Completed || rep.Steps != 4 {
		t.Fatalf("canceled report %+v, want 4 uncompleted steps", rep)
	}

	var snap bytes.Buffer
	if _, err := interrupted.WriteCheckpoint(&snap); err != nil {
		t.Fatal(err)
	}
	resumed, err := specdag.ResumeSimulation(mkFed(), cfg, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := specdag.Run(context.Background(), resumed); err != nil {
		t.Fatal(err)
	}

	// Byte-identical history: identical gob serializations.
	encode := func(rs []specdag.RoundResult) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(ref.Results()), encode(resumed.Results())) {
		t.Fatal("RoundResult histories are not byte-identical")
	}

	// Byte-identical DAG contents: identical binary snapshots.
	dagBytes := func(s *specdag.Simulation) []byte {
		var buf bytes.Buffer
		if _, err := s.DAG().WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(dagBytes(ref), dagBytes(resumed)) {
		t.Fatal("DAG contents are not byte-identical")
	}
}

// TestSharedPoolBoundsPublicRuns: several engines running concurrently on
// one WorkerPool never exceed its size in total, asserted via the pool's
// own accounting.
func TestSharedPoolBoundsPublicRuns(t *testing.T) {
	fed := specdag.FMNISTClustered(specdag.FMNISTConfig{
		Clients:        12,
		TrainPerClient: 60,
		TestPerClient:  15,
		Seed:           63,
	})
	pool := specdag.NewWorkerPool(3)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sim, err := specdag.NewSimulation(fed, specdag.Config{
				Rounds:          5,
				ClientsPerRound: 6,
				Local:           specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
				Arch:            specdag.Arch{In: 64, Hidden: []int{32}, Out: 10},
				Selector:        specdag.AccuracyWalk{Alpha: 10},
				Seed:            int64(64 + i),
			})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := specdag.Run(context.Background(), sim, specdag.WithPool(pool)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	// Four concurrent root goroutines each add one slot beyond the pool's
	// helpers; the helpers themselves are capped at size-1.
	if peak := pool.Peak(); peak > pool.Size()+3 {
		t.Fatalf("peak %d exceeds pool size %d plus the 4 run roots", peak, pool.Size())
	}
	if pool.InUse() != 0 {
		t.Fatalf("pool reports %d in use after all runs finished", pool.InUse())
	}
}
