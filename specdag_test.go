package specdag_test

import (
	"testing"

	specdag "github.com/specdag/specdag"
)

// TestPublicAPIEndToEnd exercises the library exactly as a downstream user
// would: build a federation, run the DAG, compare with FedAvg, compute the
// specialization metrics.
func TestPublicAPIEndToEnd(t *testing.T) {
	fed := specdag.FMNISTClustered(specdag.FMNISTConfig{
		Clients:        12,
		TrainPerClient: 60,
		TestPerClient:  15,
		Seed:           1,
	})

	cfg := specdag.Config{
		Rounds:          15,
		ClientsPerRound: 4,
		Local:           specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            specdag.Arch{In: fed.InputDim, Hidden: []int{32}, Out: fed.NumClasses},
		Selector:        specdag.AccuracyWalk{Alpha: 10},
		Seed:            2,
	}
	sim, err := specdag.NewSimulation(fed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := sim.Run()
	if len(results) != 15 {
		t.Fatalf("rounds = %d", len(results))
	}

	pureness := specdag.ApprovalPureness(sim.DAG(), fed.ClusterOf())
	if pureness < 0 || pureness > 1 {
		t.Fatalf("pureness out of range: %v", pureness)
	}

	g := specdag.BuildClientGraph(sim.DAG())
	part := specdag.Louvain(g, 3)
	if len(part) == 0 {
		t.Fatal("empty partition")
	}
	if q := specdag.Modularity(g, part); q < -0.5 || q > 1 {
		t.Fatalf("modularity out of range: %v", q)
	}
	mis := specdag.Misclassification(part, fed.ClusterOf())
	if mis < 0 || mis > 1 {
		t.Fatalf("misclassification out of range: %v", mis)
	}

	flRes, err := specdag.RunFederated(fed, specdag.FedConfig{
		Rounds:          10,
		ClientsPerRound: 4,
		Local:           specdag.SGDConfig{LR: 0.05, Epochs: 1, BatchSize: 10},
		Arch:            cfg.Arch,
		Seed:            4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(flRes.MeanAccs()) != 10 {
		t.Fatal("FedAvg curve wrong length")
	}
}

func TestPublicDAGAndWeights(t *testing.T) {
	model := specdag.NewModel(specdag.Arch{In: 4, Out: 2}, 1)
	d := specdag.NewDAG(model.ParamsCopy())
	if d.Size() != 1 {
		t.Fatal("genesis missing")
	}
	w := specdag.WalkWeights([]float64{0.9, 0.5}, 10, specdag.NormStandard)
	if w[0] != 1 {
		t.Fatal("best-child weight must be 1")
	}
	avg := specdag.AverageParams([]float64{0, 2}, []float64{2, 0})
	if avg[0] != 1 || avg[1] != 1 {
		t.Fatal("AverageParams broken")
	}
	if n := specdag.NumCommunities(map[int]int{1: 0, 2: 1}); n != 2 {
		t.Fatal("NumCommunities broken")
	}
	if s := specdag.NewBoxStats([]float64{1, 2, 3}); s.Median != 2 {
		t.Fatal("NewBoxStats broken")
	}
}

func TestPublicDatasets(t *testing.T) {
	feds := []*specdag.Federation{
		specdag.Poets(specdag.PoetsConfig{ClientsPerLanguage: 2, CharsPerClient: 150, Seed: 1}),
		specdag.CIFAR100PAM(specdag.CIFARConfig{Clients: 4, TrainPerClient: 30, TestPerClient: 10, Seed: 2}),
		specdag.FedProxSynthetic(specdag.FedProxConfig{Clients: 4, MaxSamples: 120, Seed: 3}),
	}
	for _, fed := range feds {
		if err := fed.Validate(); err != nil {
			t.Errorf("%s: %v", fed.Name, err)
		}
	}
}
