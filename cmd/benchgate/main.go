// Command benchgate is the benchmark-aware CI gate: it reads the output of
// two or more `go test -bench` runs (typically SPECDAG_WORKERS=1 vs
// SPECDAG_WORKERS=0/max), extracts the experiment metrics reported via
// b.ReportMetric, and enforces the parallel engine's core contract — the
// reported metrics must be byte-for-byte identical across worker counts,
// and byte-for-byte identical to the golden values recorded in
// BENCH_parallel.json.
//
// Timing (ns/op) is explicitly NOT gated: wall clock varies across runners,
// so benchgate only renders it into a benchstat-style comparison table
// (-timing) that CI uploads as an advisory artifact.
//
// Usage:
//
//	go test -run '^$' -bench ... | tee bench-w1.txt     # SPECDAG_WORKERS=1
//	go test -run '^$' -bench ... | tee bench-wmax.txt   # SPECDAG_WORKERS=0
//	benchgate -golden BENCH_parallel.json -timing timings.txt bench-w1.txt bench-wmax.txt
//
// Exit status 0 when every gate holds, 1 with a per-metric diagnosis
// otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	golden := flag.String("golden", "", "path to BENCH_parallel.json with the golden metric_invariance_check values")
	timing := flag.String("timing", "", "write a benchstat-style ns/op comparison of the input runs to this file (advisory)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-golden BENCH_parallel.json] [-timing out.txt] bench-output.txt...")
		os.Exit(2)
	}

	runs := make([]*Run, 0, flag.NArg())
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		runs = append(runs, ParseRun(path, string(data)))
	}

	failures := CompareRuns(runs)
	if *golden != "" {
		data, err := os.ReadFile(*golden)
		if err != nil {
			fatal(err)
		}
		want, err := GoldenMetrics(data)
		if err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *golden, err))
		}
		failures = append(failures, CompareGolden(runs, want)...)
	}

	if *timing != "" {
		if err := os.WriteFile(*timing, []byte(TimingTable(runs)), 0o644); err != nil {
			fatal(err)
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d metric-invariance violation(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	total := 0
	for _, r := range runs {
		total += len(r.Metrics)
	}
	fmt.Printf("benchgate: ok — %d run(s), %d metric values byte-identical\n", len(runs), total)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}
