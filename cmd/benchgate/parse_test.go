package main

import (
	"strings"
	"testing"
)

const sampleW1 = `goos: linux
goarch: amd64
BenchmarkFigure9FedAvgComparison 	       1	1350590183 ns/op	         0.4667 CIFAR-100-dag-median	         0.8667 FMNIST-clustered-dag-median	  123456 B/op	     789 allocs/op
BenchmarkFigure15WalkScalability-4 	       1	2347340819 ns/op	       119.9 evals-active10	       101.8 evals-active5
BenchmarkSchedulerGridThroughput 	       1	 142968012 ns/op	         0.9333 sched-grid-first-acc	         0.8094 sched-grid-mean-acc
PASS
`

const sampleWMax = `BenchmarkFigure9FedAvgComparison-8 	       1	 420590183 ns/op	         0.4667 CIFAR-100-dag-median	         0.8667 FMNIST-clustered-dag-median
BenchmarkFigure15WalkScalability 	       1	 800340819 ns/op	       119.9 evals-active10	       101.8 evals-active5
BenchmarkSchedulerGridThroughput-8 	       1	 130580541 ns/op	         0.9333 sched-grid-first-acc	         0.8094 sched-grid-mean-acc
`

func TestParseRun(t *testing.T) {
	r := ParseRun("w1", sampleW1)
	if got := r.Metrics["FMNIST-clustered-dag-median"]; got != "0.8667" {
		t.Fatalf("metric parse: got %q", got)
	}
	if got := r.Metrics["evals-active10"]; got != "119.9" {
		t.Fatalf("metric parse: got %q", got)
	}
	if _, ok := r.Metrics["ns/op"]; ok {
		t.Fatal("ns/op must not be treated as an invariance metric")
	}
	if got := r.NsPerOp["Figure15WalkScalability"]; got != "2347340819" {
		t.Fatalf("ns/op parse (suffix strip): got %q", got)
	}
	if got := r.Metrics["sched-grid-mean-acc"]; got != "0.8094" {
		t.Fatalf("metric parse: got %q", got)
	}
	if len(r.Order) != 3 {
		t.Fatalf("order: %v", r.Order)
	}
	if got := r.BytesPerOp["Figure9FedAvgComparison"]; got != "123456" {
		t.Fatalf("B/op parse: got %q", got)
	}
	if got := r.AllocsPerOp["Figure9FedAvgComparison"]; got != "789" {
		t.Fatalf("allocs/op parse: got %q", got)
	}
	for _, unit := range []string{"B/op", "allocs/op"} {
		if _, ok := r.Metrics[unit]; ok {
			t.Fatalf("%s must not be treated as an invariance metric", unit)
		}
	}
}

func TestCompareRunsAgree(t *testing.T) {
	a, b := ParseRun("w1", sampleW1), ParseRun("wmax", sampleWMax)
	if failures := CompareRuns([]*Run{a, b}); len(failures) != 0 {
		t.Fatalf("identical metrics flagged: %v", failures)
	}
}

func TestCompareRunsDiverge(t *testing.T) {
	a := ParseRun("w1", sampleW1)
	b := ParseRun("wmax", strings.Replace(sampleWMax, "0.8667", "0.8666", 1))
	failures := CompareRuns([]*Run{a, b})
	if len(failures) != 1 || !strings.Contains(failures[0], "FMNIST-clustered-dag-median") {
		t.Fatalf("divergence not caught: %v", failures)
	}
}

func TestCompareRunsMissingMetric(t *testing.T) {
	a := ParseRun("w1", sampleW1)
	b := ParseRun("wmax", strings.Replace(sampleWMax, "0.8667 FMNIST-clustered-dag-median", "", 1))
	if failures := CompareRuns([]*Run{a, b}); len(failures) == 0 {
		t.Fatal("missing metric not caught")
	}
}

func TestCompareGolden(t *testing.T) {
	golden := []byte(`{
	  "metric_invariance_check": {
	    "metrics": {
	      "FMNIST-clustered-dag-median": "0.8667",
	      "evals-active5": "101.8"
	    }
	  }
	}`)
	want, err := GoldenMetrics(golden)
	if err != nil {
		t.Fatal(err)
	}
	runs := []*Run{ParseRun("w1", sampleW1), ParseRun("wmax", sampleWMax)}
	if failures := CompareGolden(runs, want); len(failures) != 0 {
		t.Fatalf("golden match flagged: %v", failures)
	}
	want["evals-active5"] = "999"
	failures := CompareGolden(runs, want)
	if len(failures) != 2 || !strings.Contains(failures[0], "evals-active5") {
		t.Fatalf("golden divergence not caught per run: %v", failures)
	}
}

func TestGoldenMetricsRejectsEmpty(t *testing.T) {
	if _, err := GoldenMetrics([]byte(`{}`)); err == nil {
		t.Fatal("golden file without metrics accepted")
	}
}

func TestTimingTable(t *testing.T) {
	runs := []*Run{ParseRun("w1", sampleW1), ParseRun("wmax", sampleWMax)}
	table := TimingTable(runs)
	for _, want := range []string{"Figure9FedAvgComparison", "1350590183", "420590183", "-68.9%",
		"123456 B/op", "789 allocs/op", "Allocations", "name\tw1\twmax"} {
		if !strings.Contains(table, want) {
			t.Fatalf("timing table missing %q:\n%s", want, table)
		}
	}
}

func TestTimingTableWithoutBenchmem(t *testing.T) {
	runs := []*Run{ParseRun("wmax", sampleWMax)}
	table := TimingTable(runs)
	if strings.Contains(table, "Allocations") {
		t.Fatalf("allocation section should be omitted without -benchmem data:\n%s", table)
	}
}
