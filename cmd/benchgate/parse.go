package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Run is the parsed form of one `go test -bench` output stream.
type Run struct {
	// Name labels the run in diagnostics (the input file path).
	Name string
	// Metrics maps a custom metric unit (the ReportMetric label, e.g.
	// "FMNIST-clustered-dag-median") to its value exactly as the benchmark
	// printed it. Byte-for-byte comparison of these strings is the
	// invariance gate: equal floats print equally, so any textual
	// difference is a numeric difference.
	Metrics map[string]string
	// NsPerOp maps a benchmark name (GOMAXPROCS suffix stripped) to its
	// ns/op string, for the advisory timing table.
	NsPerOp map[string]string
	// BytesPerOp and AllocsPerOp carry the -benchmem columns per benchmark
	// name, also advisory: allocation regressions on the training hot path
	// (nn.Train's zero-allocs-per-batch contract) show up in the timing
	// artifact without gating wall clock.
	BytesPerOp  map[string]string
	AllocsPerOp map[string]string
	// Order preserves first-appearance order of benchmark names.
	Order []string
}

// standardUnits are the testing-package metrics that vary run to run and are
// never part of the invariance gate.
var standardUnits = map[string]bool{
	"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": true,
}

// ParseRun extracts metrics from the raw output of `go test -bench`.
// Benchmark result lines have the shape
//
//	BenchmarkName[-P]  N  <value> <unit>  <value> <unit> ...
//
// where the first pair is ns/op and further pairs are custom metrics.
func ParseRun(name, out string) *Run {
	r := &Run{
		Name:        name,
		Metrics:     map[string]string{},
		NsPerOp:     map[string]string{},
		BytesPerOp:  map[string]string{},
		AllocsPerOp: map[string]string{},
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		bench := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix so runs from different runners align.
		if i := strings.LastIndexByte(bench, '-'); i > 0 && isDigits(bench[i+1:]) {
			bench = bench[:i]
		}
		if _, seen := r.NsPerOp[bench]; !seen {
			r.Order = append(r.Order, bench)
		}
		// fields[1] is the iteration count; then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			value, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				r.NsPerOp[bench] = value
				continue
			case "B/op":
				r.BytesPerOp[bench] = value
				continue
			case "allocs/op":
				r.AllocsPerOp[bench] = value
				continue
			}
			if standardUnits[unit] {
				continue
			}
			r.Metrics[unit] = value
		}
	}
	return r
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// CompareRuns checks that every metric reported by more than one run has the
// same textual value everywhere, and that all runs report the same metric
// set as the first run.
func CompareRuns(runs []*Run) []string {
	var failures []string
	if len(runs) < 2 {
		return nil
	}
	base := runs[0]
	for _, other := range runs[1:] {
		for _, metric := range sortedKeys(base.Metrics) {
			got, ok := other.Metrics[metric]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: metric %q missing (present in %s)", other.Name, metric, base.Name))
				continue
			}
			if got != base.Metrics[metric] {
				failures = append(failures, fmt.Sprintf("metric %q differs across worker counts: %s=%s vs %s=%s",
					metric, base.Name, base.Metrics[metric], other.Name, got))
			}
		}
		for _, metric := range sortedKeys(other.Metrics) {
			if _, ok := base.Metrics[metric]; !ok {
				failures = append(failures, fmt.Sprintf("%s: unexpected extra metric %q (absent in %s)", other.Name, metric, base.Name))
			}
		}
	}
	return failures
}

// goldenFile is the slice of BENCH_parallel.json that benchgate understands.
type goldenFile struct {
	MetricInvarianceCheck struct {
		Metrics map[string]string `json:"metrics"`
	} `json:"metric_invariance_check"`
}

// GoldenMetrics reads the golden metric strings from BENCH_parallel.json.
func GoldenMetrics(data []byte) (map[string]string, error) {
	var g goldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, err
	}
	if len(g.MetricInvarianceCheck.Metrics) == 0 {
		return nil, fmt.Errorf("no metric_invariance_check.metrics values")
	}
	return g.MetricInvarianceCheck.Metrics, nil
}

// CompareGolden checks every golden metric against every run, byte for byte.
func CompareGolden(runs []*Run, want map[string]string) []string {
	var failures []string
	for _, metric := range sortedKeys(want) {
		for _, r := range runs {
			got, ok := r.Metrics[metric]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: golden metric %q not reported — did the bench selection change?", r.Name, metric))
				continue
			}
			if got != want[metric] {
				failures = append(failures, fmt.Sprintf("%s: metric %q = %s, golden value is %s — experiment numerics changed; if intentional, refresh BENCH_parallel.json",
					r.Name, metric, got, want[metric]))
			}
		}
	}
	return failures
}

// TimingTable renders a benchstat-style comparison of the runs — ns/op
// plus, when the benches ran with -benchmem, B/op and allocs/op — advisory
// output only.
func TimingTable(runs []*Run) string {
	var b strings.Builder
	b.WriteString("Advisory wall-clock and allocation comparison (metrics are gated, timings are not).\n")
	b.WriteString("name")
	for _, r := range runs {
		fmt.Fprintf(&b, "\t%s ns/op", r.Name)
	}
	if len(runs) == 2 {
		b.WriteString("\tdelta")
	}
	b.WriteString("\n")
	if len(runs) == 0 {
		return b.String()
	}
	for _, bench := range runs[0].Order {
		fmt.Fprintf(&b, "%s", bench)
		for _, r := range runs {
			v, ok := r.NsPerOp[bench]
			if !ok {
				v = "-"
			}
			fmt.Fprintf(&b, "\t%s", v)
		}
		if len(runs) == 2 {
			b.WriteString("\t" + delta(runs[0].NsPerOp[bench], runs[1].NsPerOp[bench]))
		}
		b.WriteString("\n")
	}
	if table := memTable(runs); table != "" {
		b.WriteString("\nAllocations (-benchmem; advisory — nn.Train's steady state is 0 allocs/op per batch).\n")
		b.WriteString("name")
		for _, r := range runs {
			fmt.Fprintf(&b, "\t%s", r.Name)
		}
		b.WriteString("\n")
		b.WriteString(table)
	}
	return b.String()
}

// memTable renders the B/op / allocs/op columns for every benchmark that
// reported them; empty when no run used -benchmem.
func memTable(runs []*Run) string {
	var b strings.Builder
	any := false
	for _, bench := range runs[0].Order {
		row := bench
		seen := false
		for _, r := range runs {
			bytes, okB := r.BytesPerOp[bench]
			allocs, okA := r.AllocsPerOp[bench]
			if !okB && !okA {
				row += "\t-"
				continue
			}
			seen = true
			if !okB {
				bytes = "?"
			}
			if !okA {
				allocs = "?"
			}
			row += fmt.Sprintf("\t%s B/op, %s allocs/op", bytes, allocs)
		}
		if seen {
			any = true
			b.WriteString(row + "\n")
		}
	}
	if !any {
		return ""
	}
	return b.String()
}

// delta formats the relative change from a to b in percent.
func delta(a, b string) string {
	var x, y float64
	if _, err := fmt.Sscanf(a, "%g", &x); err != nil || x == 0 {
		return "-"
	}
	if _, err := fmt.Sscanf(b, "%g", &y); err != nil {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (y-x)/x*100)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
