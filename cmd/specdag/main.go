// Command specdag runs a single Specializing DAG simulation with
// configurable dataset, tip selector, and poisoning scenario, printing
// per-round progress and the final specialization metrics.
//
// The run is driven through the unified run API: Ctrl-C cancels it at round
// (or event) granularity — partial metrics are still reported — -checkpoint
// persists the full simulation state periodically and at exit, and -resume
// continues a checkpointed run bit-identically to one that was never
// interrupted. -async switches to the event-driven engine (§5.3.3: every
// client trains at its own pace, no rounds); its checkpoints (format SDA1)
// resume the same way, at event granularity.
//
// Examples:
//
//	specdag -dataset fmnist -alpha 10 -rounds 50
//	specdag -dataset poets -alpha 1 -norm dynamic
//	specdag -dataset fmnist-bywriter -poison-fraction 0.2 -poison-start 20
//	specdag -dataset fmnist -selector urts -dot tangle.dot
//	specdag -dataset fmnist -rounds 200 -checkpoint run.sdc   # ^C anytime…
//	specdag -dataset fmnist -rounds 200 -resume run.sdc       # …and continue
//	specdag -dataset fmnist -async -duration 300 -checkpoint run.sda
//	specdag -dataset fmnist -async -duration 300 -resume run.sda
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/engine"
	"github.com/specdag/specdag/internal/graphx"
	"github.com/specdag/specdag/internal/metrics"
	"github.com/specdag/specdag/internal/profiling"
	"github.com/specdag/specdag/internal/sim"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/wire"
	"github.com/specdag/specdag/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "specdag:", err)
		os.Exit(1)
	}
}

// atomicFile writes through a temp file and renames it over the target on
// Close, so an interrupted write (crash, OOM kill) never truncates the
// previous good checkpoint — the exact interruptions checkpoints exist to
// survive.
type atomicFile struct {
	f    *os.File
	path string
}

func newAtomicFile(path string) (*atomicFile, error) {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, err
	}
	return &atomicFile{f: f, path: path}, nil
}

func (a *atomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

func (a *atomicFile) Close() error {
	if err := a.f.Close(); err != nil {
		return err
	}
	return os.Rename(a.path+".tmp", a.path)
}

// abort discards the temp file without touching the target.
func (a *atomicFile) abort() {
	a.f.Close()
	os.Remove(a.path + ".tmp")
}

// eventRecorder streams the run's events into an SDE1 log file (-events):
// the same frames a specdagd subscriber would receive, written locally.
type eventRecorder struct {
	f   *os.File
	log *wire.EventLog
}

// newEventRecorder opens the log file and writes its start frame.
func newEventRecorder(path string, eng engine.Engine, seed int64, config map[string]string) (*eventRecorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("creating event log: %w", err)
	}
	l, err := wire.NewEventLog(f, 0, wire.RunInfo{Engine: eng.Name(), Seed: seed, Config: config})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("starting event log: %w", err)
	}
	return &eventRecorder{f: f, log: l}, nil
}

// finish writes the end frame and closes the file, surfacing any write
// error the hook path had to swallow mid-run.
func (r *eventRecorder) finish(rep *engine.Report, runErr error) error {
	if r == nil {
		return nil
	}
	r.log.End(rep.Steps, rep.Completed, runErr)
	if err := r.log.Err(); err != nil {
		r.f.Close()
		return fmt.Errorf("writing event log: %w", err)
	}
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("closing event log: %w", err)
	}
	fmt.Printf("wrote event log %s (%d frames)\n", r.f.Name(), r.log.NextIndex())
	return nil
}

func run() error {
	var (
		datasetName    = flag.String("dataset", "fmnist", "dataset: fmnist | fmnist-relaxed | fmnist-bywriter | poets | cifar100 | fedprox")
		alpha          = flag.Float64("alpha", 10, "specialization parameter of the accuracy walk")
		norm           = flag.String("norm", "standard", "walk-weight normalization: standard | dynamic")
		selector       = flag.String("selector", "accuracy", "tip selector: accuracy | weighted | urts | uniform")
		rounds         = flag.Int("rounds", 0, "training rounds (0 = preset default)")
		perRound       = flag.Int("clients-per-round", 0, "active clients per round (0 = preset default)")
		full           = flag.Bool("full", false, "use paper-scale federation sizes")
		seed           = flag.Int64("seed", 42, "root random seed")
		poisonFraction = flag.Float64("poison-fraction", 0, "fraction of clients with flipped labels (3<->8)")
		poisonStart    = flag.Int("poison-start", 0, "round at which poisoning begins")
		workers        = flag.Int("workers", 0, "worker goroutines for the round engine (0 = NumCPU); results are identical for any value")
		every          = flag.Int("progress-every", 5, "print progress every N rounds")
		dotFile        = flag.String("dot", "", "write the final DAG in Graphviz format to this file")
		saveFile       = flag.String("save", "", "write the final DAG as a binary snapshot (inspect with dagstat)")
		eventsFile     = flag.String("events", "", "record the run's event stream to this SDE1 log file (inspect with dagstat)")
		ckptFile       = flag.String("checkpoint", "", "write a full simulation checkpoint to this file every -checkpoint-every rounds/events and at exit (resume with -resume)")
		ckptEvery      = flag.Int("checkpoint-every", 10, "rounds (or events, with -async) between periodic checkpoints (with -checkpoint)")
		resumeFile     = flag.String("resume", "", "resume from a checkpoint written by -checkpoint (requires the same dataset/config flags)")
		asyncMode      = flag.Bool("async", false, "run the event-driven engine instead of synchronous rounds (§5.3.3)")
		duration       = flag.Float64("duration", 120, "simulated time horizon in seconds (with -async)")
		minCycle       = flag.Float64("min-cycle", 1, "fastest per-client training cycle time in simulated seconds (with -async)")
		maxCycle       = flag.Float64("max-cycle", 8, "slowest per-client training cycle time in simulated seconds (with -async)")
		netDelay       = flag.Float64("net-delay", 0.5, "broadcast propagation delay in simulated seconds (with -async)")
		faultScenario  = flag.String("fault-scenario", "", "named fault schedule replacing the uniform -net-delay with jittered lossy per-link delivery: partition-heal | straggler-3x | churn-25 (with -async)")
		depthMin       = flag.Int("depth-min", 0, "shallowest walk entry depth for banded selectors (0 = start at genesis)")
		depthMax       = flag.Int("depth-max", 0, "deepest walk entry depth for banded selectors (0 = start at genesis; required for -compact-width)")
		compactWidth   = flag.Int("compact-width", 0, "epoch width in rounds for bounded-memory compaction (0 = keep everything; requires a depth-banded selector)")
		compactLive    = flag.Int("compact-live", 0, "trailing epochs kept live before freezing (0 = default, with -compact-width)")
		compactSpill   = flag.String("compact-spill", "", "directory receiving frozen epochs' parameter spills (with -compact-width; empty = release without spilling)")
		cpuProfile     = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile     = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		stop, err := profiling.StartCPU(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := profiling.WriteHeap(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "specdag:", err)
			}
		}()
	}

	preset := sim.Quick
	if *full {
		preset = sim.Full
	}

	var spec sim.Spec
	switch *datasetName {
	case "fmnist":
		spec = sim.FMNISTSpec(preset, *seed)
	case "fmnist-relaxed":
		spec = sim.RelaxedFMNISTSpec(preset, *seed)
	case "fmnist-bywriter":
		spec = sim.ByWriterFMNISTSpec(preset, *seed)
	case "poets":
		spec = sim.PoetsSpec(preset, *seed)
	case "cifar100":
		spec = sim.CIFARSpec(preset, *seed)
	case "fedprox":
		spec = sim.FedProxSpec(preset, *seed)
	default:
		return fmt.Errorf("unknown dataset %q", *datasetName)
	}

	var normalization tipselect.Normalization
	switch *norm {
	case "standard":
		normalization = tipselect.NormStandard
	case "dynamic":
		normalization = tipselect.NormDynamic
	default:
		return fmt.Errorf("unknown normalization %q", *norm)
	}

	var sel tipselect.Selector
	switch *selector {
	case "accuracy":
		sel = tipselect.AccuracyWalk{Alpha: *alpha, Norm: normalization, DepthMin: *depthMin, DepthMax: *depthMax}
	case "weighted":
		sel = tipselect.WeightedWalk{Alpha: *alpha, DepthMin: *depthMin, DepthMax: *depthMax}
	case "urts":
		sel = tipselect.URTS{}
	case "uniform":
		sel = tipselect.UniformWalk{DepthMin: *depthMin, DepthMax: *depthMax}
	default:
		return fmt.Errorf("unknown selector %q", *selector)
	}

	var compaction dag.Compaction
	if *compactWidth > 0 {
		live := *compactLive
		if live == 0 {
			live = 2
		}
		compaction = dag.Compaction{Width: *compactWidth, Live: live, SpillDir: *compactSpill}
	} else if *compactLive > 0 || *compactSpill != "" {
		return fmt.Errorf("-compact-live/-compact-spill require -compact-width")
	}

	if *asyncMode {
		if *poisonFraction > 0 {
			return fmt.Errorf("-poison-fraction is not supported with -async (the event-driven engine has no attack scenario)")
		}
		if *rounds > 0 || *perRound > 0 {
			return fmt.Errorf("-rounds/-clients-per-round do not apply with -async; the horizon is -duration (simulated seconds)")
		}
		acfg := spec.AsyncDAGConfig(*duration, *minCycle, *maxCycle, *netDelay, sel, *seed)
		if *workers != 0 {
			acfg.Workers = *workers
		}
		acfg.Compaction = compaction
		if *faultScenario != "" {
			// The scenario's base link delay is -net-delay; the uniform
			// broadcast delay is replaced by the per-link delivery model.
			fc, err := sim.FaultScenario(*faultScenario, *duration, *netDelay)
			if err != nil {
				return err
			}
			acfg.NetworkDelay = 0
			acfg.Faults = fc
		}
		return runAsync(spec, acfg, asyncOpts{
			seed:       *seed,
			every:      *every,
			eventsFile: *eventsFile,
			ckptFile:   *ckptFile,
			ckptEvery:  *ckptEvery,
			resumeFile: *resumeFile,
			dotFile:    *dotFile,
			saveFile:   *saveFile,
		})
	}

	if *faultScenario != "" {
		return fmt.Errorf("-fault-scenario requires -async (the schedules are defined over the simulated-time horizon)")
	}

	cfg := spec.DAGConfig(preset, sel, *seed)
	cfg.Compaction = compaction
	if *workers != 0 {
		// Only the explicit flag overrides; DAGConfig already applied the
		// SPECDAG_WORKERS-derived default. Negative values flow through to
		// config validation, which rejects them with a clear error.
		cfg.Workers = *workers
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *perRound > 0 {
		cfg.ClientsPerRound = *perRound
	}
	if *poisonFraction > 0 {
		cfg.Poison = core.PoisonConfig{
			Fraction:   *poisonFraction,
			FlipA:      3,
			FlipB:      8,
			StartRound: *poisonStart,
			Track:      true,
		}
	}

	fmt.Printf("dataset=%s clients=%d clusters=%d selector=%s rounds=%d clients/round=%d seed=%d\n",
		spec.Name, len(spec.Fed.Clients), spec.Fed.NumClusters, sel.Name(), cfg.Rounds, cfg.ClientsPerRound, *seed)

	var s *core.Simulation
	var err error
	if *resumeFile != "" {
		f, ferr := os.Open(*resumeFile)
		if ferr != nil {
			return fmt.Errorf("opening checkpoint: %w", ferr)
		}
		s, err = core.ResumeSimulation(spec.Fed, cfg, f)
		f.Close()
		if err == nil {
			fmt.Printf("resumed from %s at round %d\n", *resumeFile, s.Round())
		}
	} else {
		s, err = core.NewSimulation(spec.Fed, cfg)
	}
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []engine.Option{engine.WithHooks(engine.Hooks{
		OnRound: func(ev engine.RoundEvent) {
			if (ev.Round+1)%*every != 0 && ev.Round != cfg.Rounds-1 {
				return
			}
			line := fmt.Sprintf("round %3d  acc %.3f  loss %.3f  published %d/%d  dag %d",
				ev.Round+1, ev.MeanAcc, ev.MeanLoss, ev.Published, cfg.ClientsPerRound, ev.DAGSize)
			if cfg.Poison.Enabled() && ev.Round >= cfg.Poison.StartRound {
				rr := ev.Detail.(*core.RoundResult)
				line += fmt.Sprintf("  flipped %.1f%%", 100*rr.MeanFlippedFrac())
			}
			fmt.Println(line)
		},
	})}
	if *ckptFile != "" {
		opts = append(opts, engine.WithCheckpoints(*ckptEvery, func(int) (io.WriteCloser, error) {
			return newAtomicFile(*ckptFile)
		}))
	}
	var rec *eventRecorder
	if *eventsFile != "" {
		rec, err = newEventRecorder(*eventsFile, s, *seed, map[string]string{
			"dataset": *datasetName, "preset": preset.String(), "selector": sel.Name(),
			"rounds": fmt.Sprint(cfg.Rounds), "clients_per_round": fmt.Sprint(cfg.ClientsPerRound),
		})
		if err != nil {
			return err
		}
		opts = append(opts, engine.WithHooks(rec.log.Hooks()))
	}

	rep, runErr := engine.Run(ctx, s, opts...)
	if err := rec.finish(rep, runErr); err != nil {
		return err
	}
	canceled := errors.Is(runErr, context.Canceled)
	if runErr != nil && !canceled {
		return runErr
	}
	if *ckptFile != "" {
		if err := writeFinalCheckpoint(*ckptFile, s, fmt.Sprintf("round %d", s.Round())); err != nil {
			return err
		}
	}
	if canceled {
		fmt.Printf("\ninterrupted after round %d — partial metrics below", s.Round())
		if *ckptFile != "" {
			fmt.Printf("; continue with -resume %s", *ckptFile)
		}
		fmt.Println()
	}

	return reportDAG(s.DAG(), spec, *seed, len(s.PoisonedClients()), *dotFile, *saveFile)
}

// asyncOpts carries the flag subset the event-driven mode consumes.
type asyncOpts struct {
	seed       int64
	every      int
	eventsFile string
	ckptFile   string
	ckptEvery  int
	resumeFile string
	dotFile    string
	saveFile   string
}

// runAsync drives the event-driven engine: same supervision loop as the
// synchronous path (Ctrl-C cancels between events, -checkpoint persists
// state periodically and at exit, -resume continues bit-identically), at
// event granularity.
func runAsync(spec sim.Spec, acfg core.AsyncConfig, o asyncOpts) error {
	fmt.Printf("async: duration %.0fs, cycle [%.1fs, %.1fs], network delay %.1fs\n",
		acfg.Duration, acfg.MinCycle, acfg.MaxCycle, acfg.NetworkDelay)

	var a *core.AsyncSimulation
	var err error
	if o.resumeFile != "" {
		f, ferr := os.Open(o.resumeFile)
		if ferr != nil {
			return fmt.Errorf("opening checkpoint: %w", ferr)
		}
		a, err = core.ResumeAsyncSimulation(spec.Fed, acfg, f)
		f.Close()
		if err == nil {
			fmt.Printf("resumed from %s at event %d (%d transactions)\n", o.resumeFile, a.Events(), a.DAG().Size())
		}
	} else {
		a, err = core.NewAsyncSimulation(spec.Fed, acfg)
	}
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []engine.Option{engine.WithHooks(engine.Hooks{
		OnRound: func(ev engine.RoundEvent) {
			if (ev.Round+1)%o.every != 0 {
				return
			}
			fmt.Printf("event %4d  t=%6.1fs  client %3d  acc %.3f  dag %d\n",
				ev.Round+1, ev.Time, ev.Detail.(*core.AsyncEvent).Client, ev.MeanAcc, ev.DAGSize)
		},
	})}
	if o.ckptFile != "" {
		opts = append(opts, engine.WithCheckpoints(o.ckptEvery, func(int) (io.WriteCloser, error) {
			return newAtomicFile(o.ckptFile)
		}))
	}
	var rec *eventRecorder
	if o.eventsFile != "" {
		rec, err = newEventRecorder(o.eventsFile, a, o.seed, map[string]string{
			"dataset": spec.Name, "duration": fmt.Sprint(acfg.Duration),
			"min_cycle": fmt.Sprint(acfg.MinCycle), "max_cycle": fmt.Sprint(acfg.MaxCycle),
			"net_delay": fmt.Sprint(acfg.NetworkDelay),
		})
		if err != nil {
			return err
		}
		opts = append(opts, engine.WithHooks(rec.log.Hooks()))
	}

	rep, runErr := engine.Run(ctx, a, opts...)
	if err := rec.finish(rep, runErr); err != nil {
		return err
	}
	canceled := errors.Is(runErr, context.Canceled)
	if runErr != nil && !canceled {
		return runErr
	}
	if o.ckptFile != "" {
		if err := writeFinalCheckpoint(o.ckptFile, a, fmt.Sprintf("event %d", a.Events())); err != nil {
			return err
		}
	}
	if canceled {
		fmt.Printf("\ninterrupted after event %d — partial metrics below", a.Events())
		if o.ckptFile != "" {
			fmt.Printf("; continue with -resume %s", o.ckptFile)
		}
		fmt.Println()
	}

	res := a.Result()
	fmt.Printf("\nprocessed %d events, %d transactions in the DAG\n", a.Events(), res.Transactions)
	return reportDAG(a.DAG(), spec, o.seed, 0, o.dotFile, o.saveFile)
}

// writeFinalCheckpoint persists a final snapshot of either engine kind
// through the atomic-rename path.
func writeFinalCheckpoint(path string, snap engine.Snapshotter, at string) error {
	f, err := newAtomicFile(path)
	if err != nil {
		return fmt.Errorf("creating checkpoint: %w", err)
	}
	n, err := snap.WriteCheckpoint(f)
	if err != nil {
		f.abort()
		return fmt.Errorf("writing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing checkpoint: %w", err)
	}
	fmt.Printf("wrote %d-byte checkpoint to %s (%s)\n", n, path, at)
	return nil
}

// reportDAG prints the final specialization metrics shared by both modes
// and handles the DOT/snapshot exports.
func reportDAG(d *dag.DAG, spec sim.Spec, seed int64, poisoned int, dotFile, saveFile string) error {
	fmt.Println()
	stats := d.Stats()
	fmt.Printf("final DAG: %d transactions, %d tips, max depth %d\n", stats.Transactions, stats.Tips, stats.MaxDepth)
	if epochs := d.FrozenEpochs(); len(epochs) > 0 {
		frozenTxs, spillBytes := 0, int64(0)
		for _, e := range epochs {
			frozenTxs += e.Txs
			spillBytes += e.SpillBytes
		}
		fmt.Printf("compaction: %d frozen epochs, %d frozen transactions (live floor %d), %d spill bytes\n",
			len(epochs), frozenTxs, d.LiveFloor(), spillBytes)
	}
	pureness := metrics.ApprovalPureness(d, spec.Fed.ClusterOf())
	fmt.Printf("approval pureness: %.3f (random base %.3f)\n", pureness, spec.Fed.BasePureness())

	g := metrics.BuildClientGraph(d)
	part := graphx.Louvain(g, xrand.New(seed+1))
	fmt.Printf("G_clients: %d nodes, modularity %.3f, %d communities, misclassification %.3f\n",
		g.NumNodes(), graphx.Modularity(g, part), graphx.NumCommunities(part),
		metrics.Misclassification(part, spec.Fed.ClusterOf()))

	if poisoned > 0 {
		fmt.Printf("poisoned clients: %d\n", poisoned)
	}

	if dotFile != "" {
		if err := os.WriteFile(dotFile, []byte(d.DOT()), 0o644); err != nil {
			return fmt.Errorf("writing DOT file: %w", err)
		}
		fmt.Printf("wrote DAG to %s\n", dotFile)
	}
	if saveFile != "" {
		f, err := os.Create(saveFile)
		if err != nil {
			return fmt.Errorf("creating snapshot: %w", err)
		}
		n, err := d.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing snapshot: %w", err)
		}
		fmt.Printf("wrote %d-byte snapshot to %s\n", n, saveFile)
	}
	return nil
}
