// Command specdag runs a single Specializing DAG simulation with
// configurable dataset, tip selector, and poisoning scenario, printing
// per-round progress and the final specialization metrics.
//
// Examples:
//
//	specdag -dataset fmnist -alpha 10 -rounds 50
//	specdag -dataset poets -alpha 1 -norm dynamic
//	specdag -dataset fmnist-bywriter -poison-fraction 0.2 -poison-start 20
//	specdag -dataset fmnist -selector urts -dot tangle.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/graphx"
	"github.com/specdag/specdag/internal/metrics"
	"github.com/specdag/specdag/internal/sim"
	"github.com/specdag/specdag/internal/tipselect"
	"github.com/specdag/specdag/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "specdag:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		datasetName    = flag.String("dataset", "fmnist", "dataset: fmnist | fmnist-relaxed | fmnist-bywriter | poets | cifar100 | fedprox")
		alpha          = flag.Float64("alpha", 10, "specialization parameter of the accuracy walk")
		norm           = flag.String("norm", "standard", "walk-weight normalization: standard | dynamic")
		selector       = flag.String("selector", "accuracy", "tip selector: accuracy | weighted | urts | uniform")
		rounds         = flag.Int("rounds", 0, "training rounds (0 = preset default)")
		perRound       = flag.Int("clients-per-round", 0, "active clients per round (0 = preset default)")
		full           = flag.Bool("full", false, "use paper-scale federation sizes")
		seed           = flag.Int64("seed", 42, "root random seed")
		poisonFraction = flag.Float64("poison-fraction", 0, "fraction of clients with flipped labels (3<->8)")
		poisonStart    = flag.Int("poison-start", 0, "round at which poisoning begins")
		workers        = flag.Int("workers", 0, "worker goroutines for the round engine (0 = NumCPU); results are identical for any value")
		every          = flag.Int("progress-every", 5, "print progress every N rounds")
		dotFile        = flag.String("dot", "", "write the final DAG in Graphviz format to this file")
		saveFile       = flag.String("save", "", "write the final DAG as a binary snapshot (inspect with dagstat)")
	)
	flag.Parse()

	preset := sim.Quick
	if *full {
		preset = sim.Full
	}

	var spec sim.Spec
	switch *datasetName {
	case "fmnist":
		spec = sim.FMNISTSpec(preset, *seed)
	case "fmnist-relaxed":
		spec = sim.RelaxedFMNISTSpec(preset, *seed)
	case "fmnist-bywriter":
		spec = sim.ByWriterFMNISTSpec(preset, *seed)
	case "poets":
		spec = sim.PoetsSpec(preset, *seed)
	case "cifar100":
		spec = sim.CIFARSpec(preset, *seed)
	case "fedprox":
		spec = sim.FedProxSpec(preset, *seed)
	default:
		return fmt.Errorf("unknown dataset %q", *datasetName)
	}

	var normalization tipselect.Normalization
	switch *norm {
	case "standard":
		normalization = tipselect.NormStandard
	case "dynamic":
		normalization = tipselect.NormDynamic
	default:
		return fmt.Errorf("unknown normalization %q", *norm)
	}

	var sel tipselect.Selector
	switch *selector {
	case "accuracy":
		sel = tipselect.AccuracyWalk{Alpha: *alpha, Norm: normalization}
	case "weighted":
		sel = tipselect.WeightedWalk{Alpha: *alpha}
	case "urts":
		sel = tipselect.URTS{}
	case "uniform":
		sel = tipselect.UniformWalk{}
	default:
		return fmt.Errorf("unknown selector %q", *selector)
	}

	cfg := spec.DAGConfig(preset, sel, *seed)
	if *workers > 0 {
		// Only the explicit flag overrides; DAGConfig already applied the
		// SPECDAG_WORKERS-derived default.
		cfg.Workers = *workers
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *perRound > 0 {
		cfg.ClientsPerRound = *perRound
	}
	if *poisonFraction > 0 {
		cfg.Poison = core.PoisonConfig{
			Fraction:   *poisonFraction,
			FlipA:      3,
			FlipB:      8,
			StartRound: *poisonStart,
			Track:      true,
		}
	}

	fmt.Printf("dataset=%s clients=%d clusters=%d selector=%s rounds=%d clients/round=%d seed=%d\n",
		spec.Name, len(spec.Fed.Clients), spec.Fed.NumClusters, sel.Name(), cfg.Rounds, cfg.ClientsPerRound, *seed)

	s, err := core.NewSimulation(spec.Fed, cfg)
	if err != nil {
		return err
	}
	for r := 0; r < cfg.Rounds; r++ {
		rr := s.RunRound()
		if (r+1)%*every == 0 || r == cfg.Rounds-1 {
			published := 0
			for _, p := range rr.Published {
				if p {
					published++
				}
			}
			line := fmt.Sprintf("round %3d  acc %.3f  loss %.3f  published %d/%d  dag %d",
				r+1, rr.MeanTrainedAcc(), rr.MeanTrainedLoss(), published, len(rr.Active), s.DAG().Size())
			if cfg.Poison.Enabled() && r >= cfg.Poison.StartRound {
				line += fmt.Sprintf("  flipped %.1f%%", 100*rr.MeanFlippedFrac())
			}
			fmt.Println(line)
		}
	}

	fmt.Println()
	stats := s.DAG().Stats()
	fmt.Printf("final DAG: %d transactions, %d tips, max depth %d\n", stats.Transactions, stats.Tips, stats.MaxDepth)
	pureness := metrics.ApprovalPureness(s.DAG(), spec.Fed.ClusterOf())
	fmt.Printf("approval pureness: %.3f (random base %.3f)\n", pureness, spec.Fed.BasePureness())

	g := metrics.BuildClientGraph(s.DAG())
	part := graphx.Louvain(g, xrand.New(*seed+1))
	fmt.Printf("G_clients: %d nodes, modularity %.3f, %d communities, misclassification %.3f\n",
		g.NumNodes(), graphx.Modularity(g, part), graphx.NumCommunities(part),
		metrics.Misclassification(part, spec.Fed.ClusterOf()))

	if n := len(s.PoisonedClients()); n > 0 {
		fmt.Printf("poisoned clients: %d\n", n)
	}

	if *dotFile != "" {
		if err := os.WriteFile(*dotFile, []byte(s.DAG().DOT()), 0o644); err != nil {
			return fmt.Errorf("writing DOT file: %w", err)
		}
		fmt.Printf("wrote DAG to %s\n", *dotFile)
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			return fmt.Errorf("creating snapshot: %w", err)
		}
		n, err := s.DAG().WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing snapshot: %w", err)
		}
		fmt.Printf("wrote %d-byte snapshot to %s\n", n, *saveFile)
	}
	return nil
}
