// Command specdagd is the Specializing DAG experiment daemon: it hosts many
// concurrent DAG-FL runs on one shared worker budget and serves their
// lifecycle and live SDE1 event streams over HTTP.
//
//	specdagd -addr :9477 -workers 8 -dir /var/lib/specdagd
//
// Submit a run and watch it:
//
//	curl -d '{"dataset":"fmnist","seed":1,"label":"demo"}' localhost:9477/runs
//	curl -o demo.sde 'localhost:9477/runs/1/events?from=0'   # blocks until done
//	dagstat -in demo.sde
//
// On SIGTERM/SIGINT the daemon pauses every running run to a checkpoint,
// and — when -dir is set — persists the checkpoints and a manifest so the
// next boot resumes where this one stopped (paused runs come back paused;
// POST /runs/{id}/resume continues them bit-identically).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/specdag/specdag/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9477", "listen address")
		workers = flag.Int("workers", 0, "shared worker budget for all hosted runs (0 = NumCPU)")
		ring    = flag.Int("ring", 0, "per-run event ring capacity in frames (0 = default)")
		every   = flag.Int("checkpoint-every", 25, "default checkpoint cadence in engine units")
		quantum = flag.Int("quantum", 0, "scheduler dispatch quantum in engine units per run (0 = default)")
		dir     = flag.String("dir", "", "state directory: persist paused runs on shutdown, restore them on boot")
		grace   = flag.Duration("grace", 30*time.Second, "shutdown grace period for pausing runs")

		spillDir  = flag.String("spill-dir", "", "event-log spill directory: mirror every run's SDE1 stream to disk so a lapped subscriber replays from file instead of seeing a gap (empty disables)")
		maxRuns   = flag.Int("max-runs", 0, "cap on concurrently active (running or paused) runs; submits beyond it answer 429 (0 = unlimited)")
		maxTenant = flag.Int("max-runs-per-tenant", 0, "per-tenant cap on concurrently active runs, keyed by the request's tenant field (0 = unlimited)")
	)
	flag.Parse()
	cfg := serve.Config{
		Workers:          *workers,
		Ring:             *ring,
		CheckpointEvery:  *every,
		Quantum:          *quantum,
		Dir:              *dir,
		SpillDir:         *spillDir,
		MaxRuns:          *maxRuns,
		MaxRunsPerTenant: *maxTenant,
	}
	if err := run(*addr, cfg, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "specdagd:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config, grace time.Duration) error {
	s := serve.NewServer(cfg)
	dir := cfg.Dir
	if dir != "" {
		n, err := s.Restore()
		if err != nil {
			return fmt.Errorf("restoring state from %s: %w", dir, err)
		}
		if n > 0 {
			log.Printf("restored %d runs from %s", n, dir)
		}
	}

	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	// The listener's accept loop; joined via errc before run returns.
	//speclint:allow budget http.Server owns its goroutines; this one hands ListenAndServe's exit back to main
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("specdagd listening on %s (workers=%d)", addr, cfg.Workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("%s: pausing runs to checkpoints", sig)
	case err := <-errc:
		return fmt.Errorf("listening on %s: %w", addr, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	// Stop accepting new work first, then quiesce the runs: open event
	// streams end when their runs settle, so Shutdown order matters.
	if err := s.Shutdown(ctx); err != nil {
		log.Printf("pausing runs: %v", err)
	}
	for _, st := range s.Statuses() {
		log.Printf("run %d (%s): %s at step %d", st.ID, st.Dataset, st.State, st.Steps)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("closing listener: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if dir != "" {
		log.Printf("state persisted to %s", dir)
	}
	return nil
}
