package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSpeclint compiles the vettool into a temp dir and returns its path.
func buildSpeclint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "speclint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building speclint: %v\n%s", err, out)
	}
	return bin
}

// TestRepoIsSpeclintClean is the acceptance gate run locally: the whole
// module must pass the suite with zero unsuppressed diagnostics, through
// the same go vet protocol CI uses.
func TestRepoIsSpeclintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("vets the whole module; skipped in -short mode")
	}
	bin := buildSpeclint(t)
	root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = strings.TrimSpace(string(root))
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool=speclint ./... failed: %v\n%s", err, out)
	}
}

// TestVettoolReportsViolations drives the full go vet protocol against a
// scratch module seeded with contract violations, proving the unitchecker
// driver (config parsing, export-data type-checking, diagnostics, exit
// codes) works outside the in-process test harness.
func TestVettoolReportsViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain; skipped in -short mode")
	}
	bin := buildSpeclint(t)
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.24\n")
	write("internal/core/core.go", `package core

import "math/rand"

func Draw() int {
	n := 0
	go func() { n++ }()
	return rand.Intn(10) + n
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on a module seeded with violations:\n%s", out)
	}
	for _, wantFragment := range []string{
		"math/rand.Intn in deterministic package core",
		"naked go statement outside internal/par",
	} {
		if !strings.Contains(string(out), wantFragment) {
			t.Errorf("vet output missing %q:\n%s", wantFragment, out)
		}
	}
}
