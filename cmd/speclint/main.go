// Command speclint is the repository's determinism-and-concurrency vettool:
// it runs the internal/lint analyzer suite (detrand, maporder, budget,
// kernelorder, deprecated) over type-checked packages.
//
// It speaks the go vet tool protocol, so the canonical invocation is
//
//	go build -o "$(go env GOPATH)/bin/speclint" ./cmd/speclint
//	go vet -vettool="$(which speclint)" ./...
//
// which is exactly what the CI lint job runs. For convenience, invoking it
// with package patterns instead of a .cfg file re-execs itself through
// go vet:
//
//	speclint ./...
//
// Findings are suppressed per line with `//speclint:allow <analyzer>
// <reason>`; the reason is mandatory and stale or malformed directives are
// themselves findings. See internal/lint for the contract each analyzer
// enforces and README.md's "Determinism contracts" section for the policy.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"github.com/specdag/specdag/internal/lint"
)

func main() {
	args := os.Args[1:]

	// go vet tool protocol, part 1: report a unique version string that the
	// go command folds into its action cache key, so rebuilding speclint
	// invalidates cached vet results.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		fmt.Printf("speclint version devel buildID=%02x\n", executableSum())
		return
	}
	// go vet tool protocol, part 2: enumerate tool-specific flags (none).
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	// go vet tool protocol, part 3: analyze one package described by a
	// JSON .cfg file written by the go command.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(lint.RunUnitFile(args[0], lint.All(), os.Stderr))
	}

	// Convenience mode: treat the arguments as package patterns and drive
	// go vet with ourselves as the tool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "speclint: locating own executable: %v\n", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "speclint: running go vet: %v\n", err)
		os.Exit(1)
	}
}

// executableSum hashes the running binary so the version string (and with
// it the go command's vet cache) changes whenever speclint is rebuilt.
func executableSum() []byte {
	self, err := os.Executable()
	if err != nil {
		return []byte("unknown")
	}
	f, err := os.Open(self)
	if err != nil {
		return []byte("unknown")
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return []byte("unknown")
	}
	return h.Sum(nil)[:8]
}
