// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5) as markdown tables on stdout.
//
//	experiments -exp all            # everything, quick scale
//	experiments -exp table2 -full   # one experiment at paper scale
//	experiments -exp fig12          # poisoning curves (fig12 == fig13 runs)
//
// Experiment IDs: table1 table2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 fig15 ablations gossip visibility faults all, plus longhaul —
// the bounded-memory endurance run (epoch compaction + parameter spill),
// which is not part of "all".
//
// Every experiment runs through the unified run API on one shared worker
// pool (-workers), so the whole sweep is interruptible: Ctrl-C cancels the
// in-flight runs at round granularity and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/specdag/specdag/internal/profiling"
	"github.com/specdag/specdag/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment id (table1, table2, fig5..fig15, ablations, gossip, visibility, faults, all)")
		full       = flag.Bool("full", false, "paper-scale runs (100 rounds, full federations)")
		seed       = flag.Int64("seed", 42, "root random seed")
		workers    = flag.Int("workers", 0, "total worker budget shared by sweep cells and round engines (0 = NumCPU); results are identical for any value")
		gridDir    = flag.String("grid-dir", "", "per-cell checkpoint directory for sweep grids: a crashed sweep rerun resumes its cells instead of recomputing them (default $SPECDAG_GRID_DIR; empty disables)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		stop, err := profiling.StartCPU(*cpuProfile)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := profiling.WriteHeap(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	if *workers > 0 {
		sim.SetWorkers(*workers)
	}
	if *gridDir != "" {
		sim.SetGridDir(*gridDir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	preset := sim.Quick
	if *full {
		preset = sim.Full
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9",
			"fig10", "fig12", "fig14", "fig15", "ablations", "gossip", "visibility", "faults"}
		// fig11 shares runs with fig10; fig13 with fig12.
	}

	for _, id := range ids {
		start := time.Now()
		out, err := runOne(ctx, strings.TrimSpace(id), preset, *seed)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted — partial sweep discarded")
			return nil
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v at %s scale)\n\n", id, time.Since(start).Round(time.Millisecond), preset)
	}
	return nil
}

func runOne(ctx context.Context, id string, preset sim.Preset, seed int64) (string, error) {
	switch id {
	case "table1":
		return sim.Table1(), nil
	case "table2":
		rows, err := sim.Table2(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderTable2(rows), nil
	case "fig5":
		res, err := sim.Figure5(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderFig5(res), nil
	case "fig6":
		curves, err := sim.Figure6(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderCurves("Figure 6: accuracy by alpha (standard normalization)", curves), nil
	case "fig7":
		res, err := sim.Figure7(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderFig7(res), nil
	case "fig8":
		curves, err := sim.Figure8(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderCurves("Figure 8: accuracy by alpha (relaxed clusters)", curves), nil
	case "fig9":
		res, err := sim.Figure9(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderFig9(res), nil
	case "fig10", "fig11":
		curves, err := sim.Figure10And11(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderFig1011(curves), nil
	case "fig12", "fig13":
		curves, err := sim.Figure12And13(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderPoison(curves), nil
	case "fig14":
		res, err := sim.Figure14(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderFig14(res), nil
	case "fig15":
		curves, err := sim.Figure15(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderFig15(curves), nil
	case "visibility":
		rows, err := sim.VisibilitySweep(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderAblation("reveal delay (non-ideal broadcast)", rows), nil
	case "faults":
		rows, err := sim.FaultSweep(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderFaults(rows), nil
	case "longhaul":
		// The bounded-memory endurance run (ROADMAP item 2): epoch compaction
		// with parameter spill. Quick scale finishes in seconds; -full is the
		// ~10^6-event acceptance run and takes minutes. Not part of "all".
		dir, err := os.MkdirTemp("", "specdag-longhaul-*")
		if err != nil {
			return "", err
		}
		defer os.RemoveAll(dir)
		rep, err := sim.LongHaul(ctx, preset, dir, seed)
		if err != nil {
			return "", err
		}
		return sim.RenderLongHaul(rep), nil
	case "gossip":
		curves, err := sim.GossipComparison(ctx, preset, seed)
		if err != nil {
			return "", err
		}
		return "### Extension: gossip learning vs FedAvg vs DAG (FMNIST-clustered)\n\n" +
			sim.RenderFig1011(curves), nil
	case "ablations":
		var b strings.Builder
		type abl struct {
			name string
			run  func(context.Context, sim.Preset, int64) ([]sim.AblationRow, error)
		}
		for _, a := range []abl{
			{"normalization (alpha=1)", sim.AblationNormalization},
			{"publish gate", sim.AblationPublishGate},
			{"walk entry depth", sim.AblationWalkDepth},
			{"reference walks", sim.AblationReferenceWalks},
			{"selector family", sim.AblationSelectors},
			{"partial layer sharing", sim.AblationPartialSharing},
		} {
			rows, err := a.run(ctx, preset, seed)
			if err != nil {
				return "", err
			}
			b.WriteString(sim.RenderAblation(a.name, rows))
			b.WriteString("\n")
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", id)
	}
}
