// Command dagstat inspects Specializing DAG artifacts: plain tangle
// snapshots (cmd/specdag -save, format SDG1), full simulation checkpoints
// of both engine kinds — synchronous rounds (format SDC1) and the
// event-driven engine (format SDA1), the resumable state behind
// specdag.Run — and SDE1 event logs (cmd/specdag -events, or a saved
// specdagd events download). For tangle-bearing artifacts it reports
// structural statistics, per-issuer activity, heaviest transactions by
// cumulative weight, and optional Graphviz export; for checkpoints it
// additionally shows the resume point; for event logs it counts frames by
// kind and shows the originating run's configuration and outcome.
//
//	specdag -dataset fmnist -rounds 30 -save tangle.sdg
//	dagstat -in tangle.sdg
//	dagstat -in tangle.sdg -top 5 -dot tangle.dot
//	specdag -dataset fmnist -rounds 200 -checkpoint run.sdc
//	dagstat -in run.sdc
//	specdag -dataset fmnist -async -duration 300 -checkpoint run.sda
//	dagstat -in run.sda
//	curl -o run.sde 'localhost:9477/runs/1/events?from=0'
//	dagstat -in run.sde
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/specdag/specdag/internal/core"
	"github.com/specdag/specdag/internal/dag"
	"github.com/specdag/specdag/internal/graphx"
	"github.com/specdag/specdag/internal/metrics"
	"github.com/specdag/specdag/internal/wire"
	"github.com/specdag/specdag/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dagstat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in      = flag.String("in", "", "snapshot file written by specdag -save (required)")
		top     = flag.Int("top", 10, "show the N heaviest transactions")
		dotFile = flag.String("dot", "", "write Graphviz output to this file")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	// Sniff the magic: plain DAG snapshot (SDG1), full simulation
	// checkpoint (sync SDC1 / async SDA1) — all carrying a tangle to
	// analyze — or an SDE1 event log, which gets its own report.
	br := bufio.NewReader(f)
	magic, err := br.Peek(4)
	if err != nil {
		return fmt.Errorf("reading magic: %w", err)
	}
	var d *dag.DAG
	switch string(magic) {
	case "SDE1":
		return eventLogStats(*in, br)
	case "SDC1", "SDA1":
		info, ckptDAG, err := core.InspectCheckpoint(br)
		if err != nil {
			return err
		}
		d = ckptDAG
		if info.Kind == "async" {
			state := "in flight"
			if info.Done {
				state = "complete"
			}
			fmt.Printf("async simulation checkpoint: seed %d, event %d (horizon %.0fs, %s), %d clients, %d pending txs — resume with specdag -async -resume\n",
				info.Seed, info.Events, info.Duration, state, info.Clients, info.Pending)
		} else {
			fmt.Printf("simulation checkpoint: seed %d, round %d/%d, %d clients — resume with specdag -resume\n",
				info.Seed, info.Round, info.Rounds, info.Clients)
		}
		if info.FrozenEpochs > 0 {
			fmt.Printf("compaction: %d frozen epochs, %d frozen transactions, %d spill bytes (live floor %d)\n",
				info.FrozenEpochs, info.FrozenTxs, info.SpillBytes, d.LiveFloor())
			epochs := d.FrozenEpochs()
			fmt.Println("  epoch |    ids    | txs | rounds  | mean acc | spill")
			for _, e := range epochs {
				spill := "-"
				if e.SpillFile != "" {
					spill = fmt.Sprintf("%s (%d B)", e.SpillFile, e.SpillBytes)
				}
				fmt.Printf("  %5d | %4d-%-4d | %3d | %3d-%-3d | %8.3f | %s\n",
					e.Epoch, e.FirstID, e.LastID, e.Txs, e.MinRound, e.MaxRound, e.MeanTestAcc, spill)
			}
		}
	default:
		d, err = dag.ReadDAG(br)
		if err != nil {
			return err
		}
	}

	stats := d.Stats()
	fmt.Printf("snapshot: %s\n", *in)
	fmt.Printf("transactions: %d  tips: %d  max depth: %d\n", stats.Transactions, stats.Tips, stats.MaxDepth)

	// Per-issuer activity.
	published := map[int]int{}
	poisoned := 0
	var paramDim int
	for _, tx := range d.All() {
		if tx.IsGenesis() {
			paramDim = len(tx.Params)
			continue
		}
		published[tx.Issuer]++
		if tx.Meta.Poisoned {
			poisoned++
		}
	}
	fmt.Printf("model parameters per transaction: %d\n", paramDim)
	fmt.Printf("publishing clients: %d  poisoned transactions: %d\n", len(published), poisoned)

	// Community structure of the client graph.
	g := metrics.BuildClientGraph(d)
	if g.NumNodes() > 0 {
		part := graphx.Louvain(g, xrand.New(1))
		fmt.Printf("G_clients: %d nodes, %d communities, modularity %.3f\n",
			g.NumNodes(), graphx.NumCommunities(part), graphx.Modularity(g, part))
	}

	// Heaviest transactions (classic cumulative weight). The sweep's bitset
	// costs O(n^2/64) memory over the live suffix; past a few hundred
	// thousand transactions that dwarfs the snapshot itself, so skip the
	// table rather than OOM on long-haul artifacts.
	const maxWeighable = 200_000
	if live := d.Size() - int(d.LiveFloor()); live > maxWeighable {
		fmt.Printf("\nheaviest-transactions table skipped: %d live transactions exceed the %d sweep limit\n", live, maxWeighable)
		return writeDot(*dotFile, d)
	}
	weights := d.CumulativeWeights()
	type row struct {
		id dag.ID
		w  int
	}
	rows := make([]row, 0, len(weights))
	for id, w := range weights {
		rows = append(rows, row{id, w})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].w != rows[j].w {
			return rows[i].w > rows[j].w
		}
		return rows[i].id < rows[j].id
	})
	if *top > len(rows) {
		*top = len(rows)
	}
	scope := ""
	if d.LiveFloor() > 0 {
		scope = ", live suffix only"
	}
	fmt.Printf("\nheaviest %d transactions (cumulative weight%s):\n", *top, scope)
	fmt.Println("  id | weight | issuer | round | test acc")
	for _, r := range rows[:*top] {
		tx := d.MustGet(r.id)
		fmt.Printf("%4d | %6d | %6d | %5d | %.3f\n", tx.ID, r.w, tx.Issuer, tx.Round, tx.Meta.TestAcc)
	}

	return writeDot(*dotFile, d)
}

// writeDot handles the optional Graphviz export.
func writeDot(path string, d *dag.DAG) error {
	if path == "" {
		return nil
	}
	if err := os.WriteFile(path, []byte(d.DOT()), 0o644); err != nil {
		return fmt.Errorf("writing DOT file: %w", err)
	}
	fmt.Printf("\nwrote Graphviz output to %s\n", path)
	return nil
}

// eventLogStats reports an SDE1 event log: the originating run's identity
// and configuration, frame counts by kind, the index range, and how (or
// whether) the run ended.
func eventLogStats(name string, r io.Reader) error {
	wr, err := wire.NewReader(r)
	if err != nil {
		return err
	}
	var (
		counts      = map[wire.Kind]int{}
		total       int
		first, last uint64
		info        *wire.RunInfo
		end         *wire.End
	)
	for {
		f, err := wr.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("frame %d: %w", total, err)
		}
		if total == 0 {
			first = f.Index
		}
		last = f.Index
		total++
		counts[f.Kind]++
		switch f.Kind {
		case wire.KindStart:
			info = f.Start
		case wire.KindEnd:
			end = f.End
		}
	}
	if total == 0 {
		return fmt.Errorf("%s: empty event log", name)
	}

	fmt.Printf("event log: %s\n", name)
	if info != nil {
		fmt.Printf("run: engine %s, seed %d", info.Engine, info.Seed)
		if info.Label != "" {
			fmt.Printf(", label %q", info.Label)
		}
		fmt.Println()
		keys := make([]string, 0, len(info.Config))
		for k := range info.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s = %s\n", k, info.Config[k])
		}
	} else {
		fmt.Println("run: unknown (log starts mid-stream, no start frame)")
	}
	fmt.Printf("frames: %d, indices [%d, %d]\n", total, first, last)
	for _, k := range []wire.Kind{wire.KindStart, wire.KindRound, wire.KindPublish, wire.KindProbe, wire.KindCheckpoint, wire.KindGap, wire.KindEnd} {
		if counts[k] > 0 {
			fmt.Printf("  %-10s %d\n", k, counts[k])
		}
	}
	switch {
	case end == nil:
		fmt.Println("outcome: log ends mid-run (no end frame)")
	case end.Completed:
		fmt.Printf("outcome: completed after %d steps\n", end.Steps)
	default:
		fmt.Printf("outcome: stopped after %d steps: %s\n", end.Steps, end.Err)
	}
	return nil
}
